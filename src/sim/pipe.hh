/**
 * @file
 * A fixed-latency symbol pipeline (a chain of registers).
 *
 * The simulator's timing contract: a symbol pushed during cycle t
 * into a Pipe of latency L becomes readable at head() during cycle
 * t + L. Latency 1 models a single register (a component's output
 * register); larger latencies model wire pipelining — the paper's
 * "variable turn delay" treats each inter-router wire as an integral
 * number of pipeline registers (Section 5.1).
 */

#ifndef METRO_SIM_PIPE_HH
#define METRO_SIM_PIPE_HH

#include <vector>

#include "common/logging.hh"
#include "sim/symbol.hh"

namespace metro
{

/**
 * Ring buffer of symbols providing a push-at-tail / read-at-head
 * interface with a compile-time-unknown but fixed latency.
 *
 * Usage discipline per cycle: any number of head() reads, at most
 * one push(), then exactly one advance() issued by the engine after
 * every component has ticked. Components therefore never observe
 * values pushed in the current cycle, which makes component tick
 * order irrelevant.
 */
class Pipe
{
  public:
    /** @param latency cycles from push to visibility; must be ≥ 1. */
    explicit Pipe(unsigned latency = 1)
        : slots_(latency), head_(0)
    {
        METRO_ASSERT(latency >= 1, "pipe latency must be >= 1");
    }

    /** Latency in cycles. */
    unsigned latency() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    /**
     * The symbol that was pushed latency() cycles ago. Returned by
     * value: push() may legally overwrite the head slot in the same
     * cycle (components read inputs before writing outputs).
     */
    Symbol head() const { return slots_[head_]; }

    /**
     * Occupy this cycle's input slot. At most one push per cycle;
     * pushing twice in one cycle is a simulator bug. The pushed
     * value is staged and only committed into the ring by
     * advance(), so same-cycle readers — regardless of component
     * tick order — never observe it.
     */
    void
    push(const Symbol &s)
    {
        METRO_ASSERT(!pushed_, "double push into pipe in one cycle");
        pending_ = s;
        pushed_ = true;
        if (s.kind != SymbolKind::Empty)
            ++occupied_;
    }

    /** Rotate the ring: called once per cycle by the engine. */
    void
    advance()
    {
        // The slot just consumed as head is refilled with this
        // cycle's push; it resurfaces as head after exactly
        // `latency` advances.
        if (slots_[head_].kind != SymbolKind::Empty)
            --occupied_;
        slots_[head_] = pushed_ ? pending_ : Symbol{};
        pushed_ = false;
        head_ = (head_ + 1) % slots_.size();
    }

    /**
     * Non-Empty symbols in flight, including a staged push. While
     * this is 0 every advance() is pure head rotation of an
     * all-Empty ring — unobservable, which is what lets the engine
     * fast-path drained lanes (see Link::canSleepNow).
     */
    unsigned occupied() const { return occupied_; }

    /**
     * Count in-flight symbols of one kind, including a staged push
     * not yet committed by advance(). Passive introspection for the
     * observability layer (in-flight censuses at drain time).
     */
    unsigned
    countKind(SymbolKind kind) const
    {
        unsigned n = 0;
        for (const auto &s : slots_) {
            if (s.kind == kind)
                ++n;
        }
        if (pushed_ && pending_.kind == kind)
            ++n;
        return n;
    }

    /** Clear all in-flight symbols (used by fault injection). */
    void
    flush()
    {
        for (auto &s : slots_)
            s = Symbol{};
        pushed_ = false;
        occupied_ = 0;
    }

  private:
    std::vector<Symbol> slots_;
    std::size_t head_;
    Symbol pending_;
    bool pushed_ = false;
    unsigned occupied_ = 0;
};

} // namespace metro

#endif // METRO_SIM_PIPE_HH
