/**
 * @file
 * A fixed-latency symbol pipeline (a chain of registers).
 *
 * The simulator's timing contract: a symbol pushed during cycle t
 * into a Pipe of latency L becomes readable at head() during cycle
 * t + L. Latency 1 models a single register (a component's output
 * register); larger latencies model wire pipelining — the paper's
 * "variable turn delay" treats each inter-router wire as an integral
 * number of pipeline registers (Section 5.1).
 *
 * Storage lives in a LaneArena (see arena.hh) — the flat
 * structure-of-arrays backing every lane of a network shares. Pipe
 * is the standalone single-lane convenience over a private arena:
 * unit tests and ad-hoc harnesses construct Pipes directly; the
 * simulation proper (Link, Network) allocates lanes straight out of
 * the network-wide arena so the engine's advance pass streams
 * through contiguous memory.
 */

#ifndef METRO_SIM_PIPE_HH
#define METRO_SIM_PIPE_HH

#include "sim/arena.hh"
#include "sim/symbol.hh"

namespace metro
{

/**
 * One symbol lane providing a push-at-tail / read-at-head interface
 * with a compile-time-unknown but fixed latency.
 *
 * Usage discipline per cycle: any number of head() reads, at most
 * one push(), then exactly one advance() issued by the engine after
 * every component has ticked. Components therefore never observe
 * values pushed in the current cycle, which makes component tick
 * order irrelevant.
 */
class Pipe
{
  public:
    /** @param latency cycles from push to visibility; must be ≥ 1. */
    explicit Pipe(unsigned latency = 1)
        : lane_(arena_.allocate(latency))
    {}

    /** Latency in cycles. */
    unsigned latency() const { return arena_.latency(lane_); }

    /**
     * The symbol that was pushed latency() cycles ago. Returned by
     * value: push() may legally overwrite the head slot in the same
     * cycle (components read inputs before writing outputs).
     */
    Symbol head() const { return arena_.head(lane_); }

    /**
     * Occupy this cycle's input slot. At most one push per cycle;
     * pushing twice in one cycle is a simulator bug. The pushed
     * value is staged and only committed by advance(), so
     * same-cycle readers — regardless of component tick order —
     * never observe it.
     */
    void push(const Symbol &s) { arena_.push(lane_, s); }

    /** Rotate the ring: called once per cycle by the engine. */
    void advance() { arena_.advance(lane_); }

    /**
     * Non-Empty symbols in flight, including a staged push. While
     * this is 0 every advance() is pure head rotation of an
     * all-Empty ring — unobservable, which is what lets the engine
     * fast-path drained lanes (see Link::canSleepNow).
     */
    unsigned occupied() const { return arena_.occupied(lane_); }

    /**
     * Count in-flight symbols of one kind, including a staged push
     * not yet committed by advance(). Passive introspection for the
     * observability layer (in-flight censuses at drain time).
     */
    unsigned
    countKind(SymbolKind kind) const
    {
        return arena_.countKind(lane_, kind);
    }

    /** Clear all in-flight symbols (used by fault injection). */
    void flush() { arena_.flush(lane_); }

  private:
    LaneArena arena_;
    LaneId lane_;
};

} // namespace metro

#endif // METRO_SIM_PIPE_HH
