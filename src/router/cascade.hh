/**
 * @file
 * Router width cascading (paper Section 5.1).
 *
 * A logical router with a w·c-bit datapath is built from c
 * identical METRO routers operating in parallel, each carrying a
 * w-bit slice of every word. Two hooks keep the members in
 * lockstep:
 *
 *  - *shared randomness*: the members draw their random input bits
 *    from the same external stream, so identical connection
 *    requests produce identical allocations (modelled by giving
 *    each member the same RandomSource);
 *
 *  - the *wired-AND IN-USE pull-up*: each backward port exports a
 *    not-in-use signal, wire-ANDed across the cascade. When the
 *    members ever disagree about an allocation — which can only
 *    happen under a fault such as a corrupted routing header — the
 *    disagreement is detected and the affected connection is shut
 *    down on every member, containing the fault. End-to-end
 *    checksums still guard the (improbable) escapes.
 *
 * CascadeGroup evaluates the wired-AND each cycle. Register it
 * with the engine *after* its member routers so it observes the
 * cycle's final port states.
 */

#ifndef METRO_ROUTER_CASCADE_HH
#define METRO_ROUTER_CASCADE_HH

#include <memory>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "router/router.hh"
#include "sim/component.hh"

namespace metro
{

/**
 * The wired-AND consistency monitor over a set of width-cascaded
 * routers.
 */
class CascadeGroup : public Component
{
  public:
    /**
     * @param members the cascaded routers; all must share
     *                architectural parameters
     * @param seed    seed for the shared random stream distributed
     *                to every member
     */
    CascadeGroup(std::vector<MetroRouter *> members, std::uint64_t seed)
        : Component("cascade"), members_(std::move(members))
    {
        METRO_ASSERT(members_.size() >= 2,
                     "a cascade needs at least two members");
        const auto &p0 = members_.front()->params();
        for (auto *m : members_) {
            METRO_ASSERT(m->params().numForward == p0.numForward &&
                         m->params().numBackward == p0.numBackward,
                         "cascade members must be identical");
        }
        auto shared = std::make_shared<RandomSource>(seed);
        for (auto *m : members_)
            m->setRandomSource(shared);
    }

    void
    tick(Cycle cycle) override
    {
        (void)cycle;
        const auto &first = *members_.front();
        const unsigned o = first.params().numBackward;
        for (PortIndex b = 0; b < o; ++b) {
            bool any_busy = false;
            bool any_free = false;
            for (auto *m : members_) {
                if (m->backwardBusy(b))
                    any_busy = true;
                else
                    any_free = true;
            }
            if (any_busy && any_free) {
                // The wired-AND pull-up disagrees: a fault. Shut
                // the connection down on every member.
                ++containments_;
                for (auto *m : members_)
                    m->releaseBackward(b);
            }
        }
    }

    /** Disagreements detected and contained. */
    std::uint64_t containments() const { return containments_; }

    /** The member routers. */
    const std::vector<MetroRouter *> &members() const
    {
        return members_;
    }

  private:
    friend class CheckpointIO;

    std::vector<MetroRouter *> members_;
    std::uint64_t containments_ = 0;
};

} // namespace metro

#endif // METRO_ROUTER_CASCADE_HH
