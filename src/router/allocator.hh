/**
 * @file
 * The dilated-crossbar allocation function.
 *
 * Allocation is the heart of METRO's stochastic path selection
 * (Section 4): when one or more connection requests name the same
 * logical output direction, each is matched with a *randomly chosen*
 * free backward port of that direction's group; requests exceeding
 * the free ports are blocked.
 *
 * The function is deliberately pure — a deterministic function of
 * (requests, port availability, shared random word) — because width
 * cascading (Section 5.1) requires that routers receiving identical
 * requests and identical shared random bits make identical
 * allocations.
 */

#ifndef METRO_ROUTER_ALLOCATOR_HH
#define METRO_ROUTER_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace metro
{

/** One connection request into the allocator. */
struct AllocRequest
{
    /** Requesting forward port. */
    PortIndex forwardPort = kInvalidPort;

    /** Logical output direction, in [0, radix). */
    unsigned direction = 0;
};

/** Result for one request. */
struct AllocGrant
{
    PortIndex forwardPort = kInvalidPort;

    /** Granted backward port, or kInvalidPort when blocked. */
    PortIndex backwardPort = kInvalidPort;

    bool granted() const { return backwardPort != kInvalidPort; }
};

/**
 * Allocate backward ports for this cycle's new connection requests.
 *
 * Backward port b belongs to direction b / dilation — the group of
 * `dilation` logically-equivalent outputs for that direction.
 *
 * Contention policy: request priority within a direction is rotated
 * by the shared random word (no forward port is structurally
 * favoured), and each winning request draws uniformly among the
 * remaining free ports of its group.
 *
 * @param requests   new requests (at most one per forward port)
 * @param available  per-backward-port availability (enabled, not in
 *                   use, not faulty); indexed 0..o-1
 * @param dilation   configured dilation d
 * @param random_word the cycle's shared random input bits
 * @param randomize  false = deterministic selection (lowest free
 *                   port, fixed forward-port priority): the
 *                   ablation baseline against the paper's
 *                   stochastic path selection
 * @return one AllocGrant per request, same order as `requests`
 */
std::vector<AllocGrant>
allocateCrossbar(const std::vector<AllocRequest> &requests,
                 const std::vector<bool> &available, unsigned dilation,
                 std::uint64_t random_word, bool randomize = true);

} // namespace metro

#endif // METRO_ROUTER_ALLOCATOR_HH
