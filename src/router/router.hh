/**
 * @file
 * The METRO router model.
 *
 * A MetroRouter is a dilated crossbar routing component supporting
 * half-duplex bidirectional, pipelined, circuit-switched connections
 * (Section 3). It is self-routing — connections are established by
 * the routing header arriving on a forward port — and handles
 * dynamic message traffic with no internal message buffering.
 *
 * Cycle behaviour implemented here (Sections 4–5):
 *
 *  - Connection setup: a Header word arriving at an idle forward
 *    port requests a backward port in the header's logical
 *    direction; the crossbar allocator picks randomly among free
 *    equivalent ports (stochastic path selection). With hw > 0 the
 *    router consumes hw words from the stream head (pipelined
 *    connection setup); with hw = 0 and swallow enabled it strips
 *    the leading header word once its route bits are exhausted.
 *
 *  - Blocking: when no backward port is free in the requested
 *    direction the connection blocks. Per-forward-port
 *    configuration selects *fast path reclamation* (immediately
 *    propagate a backward-control-bit drop toward the source and
 *    release resources) or a *detailed reply* (hold the connection,
 *    discard data, and answer the eventual TURN with a blocked
 *    STATUS word and checksum).
 *
 *  - Connection reversal: a TURN word is forwarded downstream while
 *    the router injects a STATUS word (connection state + CRC of
 *    the data it forwarded) into the newly-reversed return stream;
 *    DATA-IDLE fills reversal-transient slots. Connections may turn
 *    any number of times; turns are symmetric.
 *
 *  - Teardown: a Drop word from the transmitting end releases the
 *    crosspoint as it passes through.
 *
 * Timing: the router's dp internal pipeline stages and the attached
 * wire's vtd registers are folded into the outgoing lane latency of
 * each Link (see sim/link.hh), so a symbol read in cycle t is
 * visible to the neighbour at t + dp + vtd.
 */

#ifndef METRO_ROUTER_ROUTER_HH
#define METRO_ROUTER_ROUTER_HH

#include <memory>
#include <vector>

#include "common/crc.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/observer.hh"
#include "obs/registry.hh"
#include "router/allocator.hh"
#include "router/config.hh"
#include "router/params.hh"
#include "sim/component.hh"
#include "sim/link.hh"

namespace metro
{

/** Forward-port connection state. */
enum class FwdPortState : std::uint8_t
{
    /** No connection; waiting for a routing header. */
    Idle,
    /** Connected, data flowing source → destination. */
    ConnectedFwd,
    /** Connected, data flowing destination → source. */
    ConnectedRev,
    /** Blocked in detailed mode: discarding, awaiting TURN. */
    BlockedWait,
    /** Blocked reply sent status; Drop goes out next cycle. */
    BlockedDrop,
    /** Fast-reclaimed: discarding the dead stream until Drop. */
    Draining,
};

/** Human-readable forward-port state name. */
const char *fwdPortStateName(FwdPortState state);

/**
 * One METRO routing component.
 */
class MetroRouter : public Component
{
  public:
    /**
     * @param id      network-unique router id
     * @param params  architectural parameters (validated)
     * @param config  runtime configuration (validated)
     * @param seed    seed for this router's own RandomSource
     */
    MetroRouter(RouterId id, const RouterParams &params,
                const RouterConfig &config, std::uint64_t seed);

    /** Attach the link feeding forward port p (router is B end). */
    void attachForward(PortIndex p, Link *link);

    /** Attach the link leaving backward port p (router is A end). */
    void attachBackward(PortIndex p, Link *link);

    /** Network stage this router sits in (for STATUS words). */
    void setStage(std::uint8_t stage) { stage_ = stage; }

    /** Stage recorded for STATUS words. */
    std::uint8_t stage() const { return stage_; }

    /**
     * Share a random-input stream across a cascade group
     * (Section 5.1, shared randomness). Replaces the router's own
     * source.
     */
    void
    setRandomSource(std::shared_ptr<RandomSource> source)
    {
        randomSource_ = std::move(source);
        // The stream is (potentially) shared now: members of a
        // cascade group must consume it in registration order, so
        // this router is pinned to the serial tick section.
        sharedRandom_ = true;
        notePlanChange();
    }

    /** The random-input stream in use. */
    const std::shared_ptr<RandomSource> &
    randomSource() const
    {
        return randomSource_;
    }

    /**
     * The random *output* bit stream this component generates
     * (Section 5.1: every METRO component produces one, so cascade
     * groups can be fed without extra parts). Deterministic per
     * (router seed, cycle); independent of the router's own
     * random-input consumption.
     */
    bool randomOutputBit(Cycle cycle) const;

    void tick(Cycle cycle) override;

    /** Architectural parameters. @{ */
    const RouterParams &params() const { return params_; }
    const RouterConfig &config() const { return config_; }
    RouterId id() const { return id_; }
    /** @} */

    /**
     * Scan-controlled reconfiguration (used by Tap). Disabling a
     * port with a live connection tears the connection down (Drop
     * in both directions) so the fault region is isolated cleanly.
     * @{
     */
    void setForwardEnabled(PortIndex p, bool enabled);
    void setBackwardEnabled(PortIndex p, bool enabled);
    void setFastReclaim(PortIndex p, bool fast);
    void setDilation(unsigned dilation);
    /** @} */

    /**
     * Fault hooks for the fault-tolerance experiments. A dead
     * router ignores all traffic. A misrouting router decodes
     * corrupted directions (random), modelling header-decode
     * faults; used by the cascade consistency tests. Both wake a
     * sleeping router *before* mutating, so the skipped-cycle
     * catch-up (syncSkipped) accounts with the state that actually
     * held during the sleep. @{
     */
    void
    setDead(bool dead)
    {
        wake();
        dead_ = dead;
    }
    bool dead() const { return dead_; }
    void
    setMisroute(bool misroute)
    {
        wake();
        misroute_ = misroute;
    }
    /** @} */

    /**
     * Register this router's shared word-accounting counters and
     * its per-router port-occupancy histogram with a central
     * registry (usually the owning Network's). Passing nullptr
     * detaches. The registry must outlive the router.
     */
    void setMetrics(MetricsRegistry *metrics);

    /** Install a connection-lifecycle observer (grant/block
     *  milestones); nullptr detaches. An observed router leaves the
     *  sharded engine's parallel section (the observer is shared
     *  mutable state), so the shard plan is invalidated. */
    void
    setObserver(ConnObserver *observer)
    {
        observer_ = observer;
        notePlanChange();
    }

    /**
     * Parallel-safety verdict (see Component): a router tick reads
     * its attached lane heads, pushes its attached lane tails and
     * mutates only per-router state — *unless* an observer is
     * watching (shared callback) or the random source is shared
     * across a cascade group (draw order must follow registration
     * order, which only the serial section preserves).
     */
    bool
    parallelTickSafe() const override
    {
        return observer_ == nullptr && !sharedRandom_;
    }

    /** Redirect the shared conservation counters (router/block
     *  discards) to per-router scratch for parallel phase-1 (see
     *  Component::setConcurrentMetrics). */
    void setConcurrentMetrics(bool on) override;

    /** Fold the scratch back into the shared registry slots. */
    void flushConcurrentMetrics() override;

    /** Introspection for tests and monitors. @{ */
    FwdPortState forwardState(PortIndex p) const;
    bool backwardBusy(PortIndex p) const;
    PortIndex connectedBackward(PortIndex fwd) const;
    const CounterSet &counters() const { return counters_; }
    CounterSet &counters() { return counters_; }
    /** True when no port holds any connection state. */
    bool quiescent() const;
    /** Last Test symbol observed on a disabled forward port. */
    Symbol lastTestSymbol(PortIndex p) const;
    /** Drive a Test symbol out a *disabled* backward port. */
    void driveTestSymbol(PortIndex p, const Symbol &s);
    /** @} */

    /**
     * Allocation observer for cascade consistency checking: after
     * each tick, the set of (forward, backward) pairs granted in
     * that tick. Cleared at the start of every tick.
     */
    const std::vector<AllocGrant> &lastGrants() const
    {
        return lastGrants_;
    }

    /** Force-release every connection (cascade containment). */
    void shutdownAllConnections();

    /** Force-release whatever connection owns backward port b
     *  (wired-AND consistency shutdown). No-op when free. */
    void releaseBackward(PortIndex b);

  private:
    friend class CheckpointIO;

    /** Pending allocation request gathered during the input scan. */
    struct PendingRequest
    {
        PortIndex fwd;
        unsigned direction;
        Symbol header;
    };

    /** Quiescence hooks (see sim/component.hh). @{ */
    bool canSleep() const override;
    void syncSkipped(Cycle from, Cycle upto) override;
    /** @} */

    /** Type-segregated dispatch (see Engine): routers registered
     *  consecutively tick through one devirtualized loop. */
    BatchTickFn
    batchTickFn() const override
    {
        return &Component::batchTickOf<MetroRouter>;
    }

    void processForwardPort(PortIndex p, Cycle cycle);
    void handleConnectedFwd(PortIndex p, const Symbol &sym,
                            Cycle cycle);
    void handleConnectedRev(PortIndex p, const Symbol &sym,
                            Cycle cycle);
    void runAllocation(Cycle cycle);
    void forwardHeader(PortIndex p, Symbol sym);
    void pushStatusUp(PortIndex p, bool blocked);
    void pushStatusDown(PortIndex p, bool blocked);
    Symbol makeStatus(PortIndex p, bool blocked) const;
    void freeConnection(PortIndex p);
    void teardownPort(PortIndex p);
    unsigned directionBits() const;
    unsigned extractDirection(const Symbol &header, Cycle cycle);
    void fillAvailability();
    void refreshOffPortDrive();

    RouterId id_;
    RouterParams params_;
    RouterConfig config_;
    std::uint8_t stage_ = 0;
    bool dead_ = false;
    bool misroute_ = false;
    std::shared_ptr<RandomSource> randomSource_;
    RandomSource randomOutput_;
    Xoshiro256 misrouteRng_;

    /**
     * Per-port connection state, structure-of-arrays: the tick loop
     * walks ports field by field (the state scan touches fState_ and
     * fLink_ only for idle ports), so each array stays hot instead
     * of striding over one big per-port record. All forward arrays
     * are indexed by forward-port number, backward arrays by
     * backward-port number; sizes are fixed at construction. @{
     */
    std::vector<Link *> fLink_;
    std::vector<FwdPortState> fState_;
    std::vector<PortIndex> fBwd_;
    /** hw words still to consume from the stream head. */
    std::vector<std::uint32_t> fConsumeLeft_;
    /** routePos to stamp on forwarded header words. */
    std::vector<std::uint16_t> fPosAfter_;
    /** swallow: strip the leading header word. */
    std::vector<std::uint8_t> fSwallowFirst_;
    /** true until the stream's first header was handled. */
    std::vector<std::uint8_t> fFirstHeaderDone_;
    /** CRC over Data words forwarded per connection. */
    std::vector<Crc16> fCrc_;
    /** requested logical direction (diagnostics). */
    std::vector<std::uint32_t> fDirection_;
    std::vector<Cycle> fLastActivity_;
    std::vector<std::uint64_t> fMsgId_;
    /** Last Test symbol observed while the port was disabled. */
    std::vector<Symbol> fLastTest_;

    std::vector<Link *> bLink_;
    std::vector<std::uint8_t> bBusy_;
    std::vector<PortIndex> bOwner_;
    /** Reverse lane consumed by a connection handler this tick
     *  (unread lanes are censused for word conservation). */
    std::vector<std::uint8_t> bRevRead_;
    /** @} */

    /** Per-tick scratch, allocated once (the former per-tick
     *  vector allocations were a measured hot spot). @{ */
    std::vector<bool> availScratch_;
    std::vector<PendingRequest> pendingScratch_;
    /** @} */

    /** availScratch_ needs refilling: some availability input
     *  (bBusy_, backwardEnabled, an attached link) changed since
     *  the last fill. Mutations mid-tick leave this cycle's
     *  snapshot stale on purpose — a port freed in cycle t accepts
     *  new connections from t+1. */
    bool availDirty_ = true;

    /** Some disabled backward port has off-port drive enabled, so
     *  the per-tick DATA-IDLE drive loop must run (recomputed on
     *  the rare enable/disable reconfigurations). */
    bool offPortDriveArmed_ = false;

    std::vector<AllocGrant> lastGrants_;
    CounterSet counters_;

    /** Interned hot-path counter slots (CounterSet::slot): bare
     *  increments instead of per-event string + map lookup. @{ */
    std::uint64_t *cBcbForwarded_;
    std::uint64_t *cReverseDropFwd_;
    std::uint64_t *cStrayReverseSymbol_;
    std::uint64_t *cHeaderConsumed_;
    std::uint64_t *cHeaderSwallowed_;
    std::uint64_t *cWordsForwarded_;
    std::uint64_t *cTurns_;
    std::uint64_t *cDrops_;
    std::uint64_t *cStrayForwardSymbol_;
    std::uint64_t *cAbortDrops_;
    std::uint64_t *cIdleDiscard_;
    std::uint64_t *cIdleTimeouts_;
    std::uint64_t *cBlockedDiscard_;
    std::uint64_t *cBlockedReplies_;
    std::uint64_t *cDrainedWords_;
    std::uint64_t *cDisabledPortDiscard_;
    std::uint64_t *cRequests_;
    std::uint64_t *cGrants_;
    std::uint64_t *cBlocks_;
    std::uint64_t *cBcbSent_;
    /** @} */

    // Observability: cached registry slots (see setMetrics). When no
    // registry is attached the pointers target scratch_, keeping the
    // hot paths branch-free.
    MetricsRegistry *metrics_ = nullptr;
    ConnObserver *observer_ = nullptr;
    std::uint64_t scratch_ = 0;
    std::uint64_t *mDiscardRouter_ = &scratch_;
    std::uint64_t *mDiscardBlock_ = &scratch_;
    LogHistogram *occupancy_ = nullptr;

    /** Replaced random source may be cascade-shared (pins the
     *  router to the serial section; see setRandomSource). */
    bool sharedRandom_ = false;

    /**
     * Concurrent-metrics mode (see setConcurrentMetrics): the
     * registry targets of the two shared conservation counters,
     * and the per-router scratch the hot pointers are swapped to
     * while parallel phase-1 runs. @{
     */
    bool concMetrics_ = false;
    std::uint64_t *realDiscardRouter_ = &scratch_;
    std::uint64_t *realDiscardBlock_ = &scratch_;
    std::uint64_t concDiscardRouter_ = 0;
    std::uint64_t concDiscardBlock_ = 0;
    /** @} */
};

} // namespace metro

#endif // METRO_ROUTER_ROUTER_HH
