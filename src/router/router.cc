#include "router/router.hh"

#include <algorithm>

#include "common/bitops.hh"

namespace metro
{

const char *
fwdPortStateName(FwdPortState state)
{
    switch (state) {
      case FwdPortState::Idle: return "Idle";
      case FwdPortState::ConnectedFwd: return "ConnectedFwd";
      case FwdPortState::ConnectedRev: return "ConnectedRev";
      case FwdPortState::BlockedWait: return "BlockedWait";
      case FwdPortState::BlockedDrop: return "BlockedDrop";
      case FwdPortState::Draining: return "Draining";
    }
    return "?";
}

MetroRouter::MetroRouter(RouterId id, const RouterParams &params,
                         const RouterConfig &config, std::uint64_t seed)
    : Component("router" + std::to_string(id)),
      id_(id), params_(params), config_(config),
      randomSource_(std::make_shared<RandomSource>(seed)),
      randomOutput_(seed ^ 0x0badc0deULL),
      misrouteRng_(seed ^ 0xdeadbeefULL)
{
    params_.validate();
    config_.validate(params_);
    const std::size_t nf = params_.numForward;
    const std::size_t nb = params_.numBackward;
    fLink_.resize(nf, nullptr);
    fState_.resize(nf, FwdPortState::Idle);
    fBwd_.resize(nf, kInvalidPort);
    fConsumeLeft_.resize(nf, 0);
    fPosAfter_.resize(nf, 0);
    fSwallowFirst_.resize(nf, 0);
    fFirstHeaderDone_.resize(nf, 0);
    fCrc_.resize(nf);
    fDirection_.resize(nf, 0);
    fLastActivity_.resize(nf, 0);
    fMsgId_.resize(nf, 0);
    fLastTest_.resize(nf);
    bLink_.resize(nb, nullptr);
    bBusy_.resize(nb, 0);
    bOwner_.resize(nb, kInvalidPort);
    bRevRead_.resize(nb, 0);
    availScratch_.resize(nb, false);
    pendingScratch_.reserve(nf);
    markSleepable();
    refreshOffPortDrive();

    cBcbForwarded_ = &counters_.slot("bcbForwarded");
    cReverseDropFwd_ = &counters_.slot("reverseDropFwd");
    cStrayReverseSymbol_ = &counters_.slot("strayReverseSymbol");
    cHeaderConsumed_ = &counters_.slot("headerConsumed");
    cHeaderSwallowed_ = &counters_.slot("headerSwallowed");
    cWordsForwarded_ = &counters_.slot("wordsForwarded");
    cTurns_ = &counters_.slot("turns");
    cDrops_ = &counters_.slot("drops");
    cStrayForwardSymbol_ = &counters_.slot("strayForwardSymbol");
    cAbortDrops_ = &counters_.slot("abortDrops");
    cIdleDiscard_ = &counters_.slot("idleDiscard");
    cIdleTimeouts_ = &counters_.slot("idleTimeouts");
    cBlockedDiscard_ = &counters_.slot("blockedDiscard");
    cBlockedReplies_ = &counters_.slot("blockedReplies");
    cDrainedWords_ = &counters_.slot("drainedWords");
    cDisabledPortDiscard_ = &counters_.slot("disabledPortDiscard");
    cRequests_ = &counters_.slot("requests");
    cGrants_ = &counters_.slot("grants");
    cBlocks_ = &counters_.slot("blocks");
    cBcbSent_ = &counters_.slot("bcbSent");
}

bool
MetroRouter::randomOutputBit(Cycle cycle) const
{
    // Derived from the component's own seed stream, NOT the shared
    // random inputs — a cascade fed from one member's output must
    // not correlate with any member's input consumption.
    return (randomOutput_.wordForCycle(cycle) & 1) != 0;
}

void
MetroRouter::setMetrics(MetricsRegistry *metrics)
{
    metrics_ = metrics;
    if (metrics == nullptr) {
        realDiscardRouter_ = &scratch_;
        realDiscardBlock_ = &scratch_;
        occupancy_ = nullptr;
    } else {
        // Word-conservation sinks are network-wide totals;
        // occupancy is per-router. Slot references stay valid for
        // the registry's lifetime, so the hot paths are bare
        // increments.
        realDiscardRouter_ =
            &metrics->counter("words.discarded.router");
        realDiscardBlock_ =
            &metrics->counter("words.discarded.block");
        occupancy_ = &metrics->histogram(
            "router." + std::to_string(id_) + ".occupancy");
    }
    // The hot pointers honour the concurrent-metrics mode: the
    // registry slots are shared across routers, so parallel
    // phase-1 increments go to per-router scratch instead.
    mDiscardRouter_ =
        concMetrics_ ? &concDiscardRouter_ : realDiscardRouter_;
    mDiscardBlock_ =
        concMetrics_ ? &concDiscardBlock_ : realDiscardBlock_;
}

void
MetroRouter::setConcurrentMetrics(bool on)
{
    if (on == concMetrics_)
        return;
    concMetrics_ = on;
    if (!on)
        flushConcurrentMetrics();
    mDiscardRouter_ =
        concMetrics_ ? &concDiscardRouter_ : realDiscardRouter_;
    mDiscardBlock_ =
        concMetrics_ ? &concDiscardBlock_ : realDiscardBlock_;
}

void
MetroRouter::flushConcurrentMetrics()
{
    if (concDiscardRouter_ != 0) {
        *realDiscardRouter_ += concDiscardRouter_;
        concDiscardRouter_ = 0;
    }
    if (concDiscardBlock_ != 0) {
        *realDiscardBlock_ += concDiscardBlock_;
        concDiscardBlock_ = 0;
    }
}

void
MetroRouter::attachForward(PortIndex p, Link *link)
{
    METRO_ASSERT(p < fLink_.size(), "forward port %u out of range", p);
    fLink_[p] = link;
    // A forward port reads the link's down lane: the router sits at
    // the B end and must wake when anything is pushed toward it.
    link->setWakeB(this);
}

void
MetroRouter::attachBackward(PortIndex p, Link *link)
{
    METRO_ASSERT(p < bLink_.size(), "backward port %u out of range", p);
    bLink_[p] = link;
    availDirty_ = true;
    // A backward port reads the link's up lane (A end).
    link->setWakeA(this);
}

unsigned
MetroRouter::directionBits() const
{
    return log2Ceil(config_.radix());
}

unsigned
MetroRouter::extractDirection(const Symbol &header, Cycle cycle)
{
    const unsigned bits = directionBits();
    if (bits == 0)
        return 0;
    if (misroute_) {
        // Header-decode fault: the direction decoded bears no
        // relation to the requested one.
        (void)cycle;
        return static_cast<unsigned>(
            misrouteRng_.below(config_.radix()));
    }
    METRO_ASSERT(header.routePos + bits <= header.routeLen,
                 "route spec exhausted: pos %u + %u > len %u "
                 "(router %u)", header.routePos, bits, header.routeLen,
                 id_);
    return static_cast<unsigned>(
        (header.route >> header.routePos) & lowMask(bits));
}

void
MetroRouter::refreshOffPortDrive()
{
    offPortDriveArmed_ = false;
    for (std::size_t b = 0; b < bLink_.size(); ++b) {
        if (!config_.backwardEnabled[b] && config_.offPortDrive[b])
            offPortDriveArmed_ = true;
    }
}

void
MetroRouter::fillAvailability()
{
    // Refills the persistent scratch in place (no allocation).
    for (std::size_t b = 0; b < bLink_.size(); ++b) {
        // Only the first backwardPortsUsed ports participate in
        // this network position (e.g. a dilation-1 radix-4 use of
        // an 8-output component wires only 4 outputs).
        availScratch_[b] = b < config_.backwardPortsUsed &&
                           config_.backwardEnabled[b] && !bBusy_[b] &&
                           bLink_[b] != nullptr;
    }
}

Symbol
MetroRouter::makeStatus(PortIndex p, bool blocked) const
{
    StatusWord sw;
    sw.router = id_;
    sw.stage = stage_;
    sw.blocked = blocked;
    sw.checksum = fCrc_[p].value();
    sw.port = fBwd_[p];
    Symbol s;
    s.kind = SymbolKind::Status;
    s.value = sw.encode();
    s.msgId = fMsgId_[p];
    return s;
}

void
MetroRouter::pushStatusUp(PortIndex p, bool blocked)
{
    fLink_[p]->pushUp(makeStatus(p, blocked));
}

void
MetroRouter::pushStatusDown(PortIndex p, bool blocked)
{
    METRO_ASSERT(fBwd_[p] != kInvalidPort, "status down w/o bwd port");
    bLink_[fBwd_[p]]->pushDown(makeStatus(p, blocked));
}

void
MetroRouter::freeConnection(PortIndex p)
{
    if (fBwd_[p] != kInvalidPort) {
        bBusy_[fBwd_[p]] = 0;
        bOwner_[fBwd_[p]] = kInvalidPort;
        fBwd_[p] = kInvalidPort;
        availDirty_ = true;
    }
    fState_[p] = FwdPortState::Idle;
    fConsumeLeft_[p] = 0;
    fFirstHeaderDone_[p] = 0;
    fSwallowFirst_[p] = 0;
}

void
MetroRouter::teardownPort(PortIndex p)
{
    if (fState_[p] != FwdPortState::Idle) {
        counters_.add("scanTeardown");
        freeConnection(p);
    }
}

void
MetroRouter::forwardHeader(PortIndex p, Symbol sym)
{
    sym.routePos = fPosAfter_[p];
    bLink_[fBwd_[p]]->pushDown(sym);
}

void
MetroRouter::handleConnectedFwd(PortIndex p, const Symbol &sym,
                                Cycle cycle)
{
    Link *down = bLink_[fBwd_[p]];

    // Reverse-lane control first: a backward-control-bit drop from
    // a blocked router downstream reclaims this path segment.
    bRevRead_[fBwd_[p]] = 1;
    const Symbol rsym = down->headUp();
    if (rsym.kind == SymbolKind::BcbDrop) {
        ++*cBcbForwarded_;
        fLastActivity_[p] = cycle;
        // Releasing the crosspoint makes the downstream channel go
        // undriven; the draining router below sees its stream end.
        // Model that with an explicit Drop down the old port.
        down->pushDown(Symbol::control(SymbolKind::Drop, fMsgId_[p]));
        bBusy_[fBwd_[p]] = 0;
        bOwner_[fBwd_[p]] = kInvalidPort;
        fBwd_[p] = kInvalidPort;
        availDirty_ = true;
        fLink_[p]->pushUp(Symbol::control(SymbolKind::BcbDrop,
                                          fMsgId_[p]));
        fState_[p] = FwdPortState::Draining;
        if (sym.kind == SymbolKind::Data)
            ++*mDiscardRouter_;
        return;
    }
    if (rsym.kind == SymbolKind::Drop) {
        // Downstream cleanup (e.g. idle timeout there): release and
        // inform upstream.
        ++*cReverseDropFwd_;
        fLink_[p]->pushUp(rsym);
        freeConnection(p);
        if (sym.kind == SymbolKind::Data)
            ++*mDiscardRouter_;
        return;
    }
    if (rsym.occupied()) {
        ++*cStrayReverseSymbol_;
        if (rsym.kind == SymbolKind::Data)
            ++*mDiscardRouter_;
    }

    if (sym.occupied())
        fLastActivity_[p] = cycle;

    switch (sym.kind) {
      case SymbolKind::Empty:
        break;
      case SymbolKind::Header:
        if (fConsumeLeft_[p] > 0) {
            --fConsumeLeft_[p];
            ++*cHeaderConsumed_;
        } else if (!fFirstHeaderDone_[p] && fSwallowFirst_[p]) {
            fFirstHeaderDone_[p] = 1;
            ++*cHeaderSwallowed_;
        } else {
            fFirstHeaderDone_[p] = 1;
            forwardHeader(p, sym);
        }
        break;
      case SymbolKind::Data:
        fCrc_[p].update(sym.value, params_.width);
        [[fallthrough]];
      case SymbolKind::Checksum:
      case SymbolKind::DataIdle:
      case SymbolKind::Ack:
      case SymbolKind::Test:
        if (fConsumeLeft_[p] > 0) {
            // Pipelined connection setup consumes words blindly
            // from the stream head.
            --fConsumeLeft_[p];
            ++*cHeaderConsumed_;
            if (sym.kind == SymbolKind::Data)
                ++*mDiscardRouter_;
        } else {
            down->pushDown(sym);
            ++*cWordsForwarded_;
        }
        break;
      case SymbolKind::Turn:
        // Forward the TURN downstream, inject our status into the
        // newly-reversed stream, and flip direction.
        down->pushDown(sym);
        pushStatusUp(p, false);
        ++*cTurns_;
        fState_[p] = FwdPortState::ConnectedRev;
        break;
      case SymbolKind::Drop:
        down->pushDown(sym);
        freeConnection(p);
        ++*cDrops_;
        break;
      case SymbolKind::Status:
      case SymbolKind::BcbDrop:
        ++*cStrayForwardSymbol_;
        break;
    }
}

void
MetroRouter::handleConnectedRev(PortIndex p, const Symbol &sym,
                                Cycle cycle)
{
    Link *down = bLink_[fBwd_[p]];
    Link *up = fLink_[p];

    // The forward lane should be quiet while reversed — except for
    // a Drop: the source-responsible endpoint aborts a connection
    // whose reply went missing (watchdog) by closing it from its
    // side. Honour the abort: free this segment and pass the Drop
    // on so the rest of the path unwinds too.
    if (sym.kind == SymbolKind::Drop) {
        ++*cAbortDrops_;
        down->pushDown(sym);
        freeConnection(p);
        return;
    }
    if (sym.occupied()) {
        // Anything else is in-flight debris of a dead attempt;
        // discard without refreshing the idle clock so a half-dead
        // connection still times out.
        ++*cStrayForwardSymbol_;
        if (sym.kind == SymbolKind::Data)
            ++*mDiscardRouter_;
    }

    bRevRead_[fBwd_[p]] = 1;
    const Symbol rsym = down->headUp();
    if (rsym.occupied())
        fLastActivity_[p] = cycle;

    switch (rsym.kind) {
      case SymbolKind::Empty:
        // Hold the connection open through reversal-transient and
        // variable-delay gaps (Section 5.1, Data Idle).
        up->pushUp(Symbol::control(SymbolKind::DataIdle, fMsgId_[p]));
        break;
      case SymbolKind::Data:
        fCrc_[p].update(rsym.value, params_.width);
        up->pushUp(rsym);
        ++*cWordsForwarded_;
        break;
      case SymbolKind::DataIdle:
      case SymbolKind::Checksum:
      case SymbolKind::Status:
      case SymbolKind::Ack:
      case SymbolKind::Test:
      case SymbolKind::Header:
        up->pushUp(rsym);
        if (rsym.kind != SymbolKind::DataIdle &&
            rsym.kind != SymbolKind::Status)
            ++*cWordsForwarded_;
        break;
      case SymbolKind::Turn:
        // Turn back toward the forward direction: forward the TURN
        // upstream, inject our status toward the new downstream.
        up->pushUp(rsym);
        pushStatusDown(p, false);
        ++*cTurns_;
        fState_[p] = FwdPortState::ConnectedFwd;
        break;
      case SymbolKind::Drop:
        up->pushUp(rsym);
        freeConnection(p);
        ++*cDrops_;
        break;
      case SymbolKind::BcbDrop:
        // A connection can block downstream after we reversed only
        // in exotic race conditions; reclaim identically (see the
        // ConnectedFwd case for the Drop-down rationale).
        ++*cBcbForwarded_;
        down->pushDown(Symbol::control(SymbolKind::Drop, fMsgId_[p]));
        bBusy_[fBwd_[p]] = 0;
        bOwner_[fBwd_[p]] = kInvalidPort;
        fBwd_[p] = kInvalidPort;
        availDirty_ = true;
        up->pushUp(Symbol::control(SymbolKind::BcbDrop, fMsgId_[p]));
        fState_[p] = FwdPortState::Draining;
        break;
    }
}

void
MetroRouter::processForwardPort(PortIndex p, Cycle cycle)
{
    if (fLink_[p] == nullptr)
        return;

    // The common case by far: an idle port whose arriving head is
    // Empty (so there is nothing to observe, discard, or connect)
    // — the idle-timeout path only applies to non-Idle states, so
    // skip before materializing the symbol. The check reads the
    // head's kind, not the lane occupancy: occupancy counts staged
    // same-cycle pushes, which another shard may be writing
    // concurrently, while the head slot is frozen for the whole of
    // phase 1. An Empty head under Corrupt draws nothing from the
    // fault PRNG, and a Dead link's head reads Empty, so skipping
    // on kind is draw-for-draw identical to reading the symbol.
    if (fState_[p] == FwdPortState::Idle &&
        fLink_[p]->peekKindDown() == SymbolKind::Empty)
        return;

    const Symbol sym = fLink_[p]->headDown();

    if (!config_.forwardEnabled[p]) {
        // Disabled port: isolated from normal operation; only scan
        // test patterns are observed (Section 5.1, Scan Support).
        if (sym.kind == SymbolKind::Test) {
            fLastTest_[p] = sym;
        } else if (sym.occupied()) {
            ++*cDisabledPortDiscard_;
            if (sym.kind == SymbolKind::Data)
                ++*mDiscardRouter_;
        }
        return;
    }

    // Idle-timeout cleanup (simulator extension; see RouterConfig).
    if (config_.idleTimeout > 0 && fState_[p] != FwdPortState::Idle &&
        !sym.occupied() &&
        cycle - fLastActivity_[p] > config_.idleTimeout) {
        ++*cIdleTimeouts_;
        const auto drop =
            Symbol::control(SymbolKind::Drop, fMsgId_[p]);
        switch (fState_[p]) {
          case FwdPortState::ConnectedFwd:
          case FwdPortState::ConnectedRev:
            bLink_[fBwd_[p]]->pushDown(drop);
            fLink_[p]->pushUp(drop);
            break;
          case FwdPortState::BlockedWait:
          case FwdPortState::BlockedDrop:
            fLink_[p]->pushUp(drop);
            break;
          case FwdPortState::Draining:
          case FwdPortState::Idle:
            break;
        }
        freeConnection(p);
        return;
    }

    switch (fState_[p]) {
      case FwdPortState::Idle:
        if (sym.kind == SymbolKind::Header) {
            PendingRequest req;
            req.fwd = p;
            req.direction = extractDirection(sym, cycle);
            req.header = sym;
            pendingScratch_.push_back(req);
        } else if (sym.occupied()) {
            // In-flight remains of a fast-reclaimed stream, or a
            // close marker racing a teardown: discard.
            ++*cIdleDiscard_;
            if (sym.kind == SymbolKind::Data)
                ++*mDiscardRouter_;
        }
        break;

      case FwdPortState::ConnectedFwd:
        handleConnectedFwd(p, sym, cycle);
        break;

      case FwdPortState::ConnectedRev:
        handleConnectedRev(p, sym, cycle);
        break;

      case FwdPortState::BlockedWait:
        if (sym.occupied())
            fLastActivity_[p] = cycle;
        switch (sym.kind) {
          case SymbolKind::Data:
            fCrc_[p].update(sym.value, params_.width);
            ++*cBlockedDiscard_;
            ++*mDiscardBlock_;
            break;
          case SymbolKind::Turn:
            // Detailed reply: status (with blocked flag and the
            // checksum of everything received) then teardown.
            pushStatusUp(p, true);
            fState_[p] = FwdPortState::BlockedDrop;
            ++*cBlockedReplies_;
            break;
          case SymbolKind::Drop:
            freeConnection(p);
            break;
          default:
            if (sym.occupied())
                ++*cBlockedDiscard_;
            break;
        }
        break;

      case FwdPortState::BlockedDrop:
        // The incoming symbol this cycle (already read) is not
        // processed; account a Data word so conservation holds.
        if (sym.kind == SymbolKind::Data)
            ++*mDiscardBlock_;
        fLink_[p]->pushUp(Symbol::control(SymbolKind::Drop,
                                          fMsgId_[p]));
        freeConnection(p);
        break;

      case FwdPortState::Draining:
        if (sym.kind == SymbolKind::Drop) {
            freeConnection(p);
        } else if (sym.occupied()) {
            fLastActivity_[p] = cycle;
            ++*cDrainedWords_;
            if (sym.kind == SymbolKind::Data)
                ++*mDiscardRouter_;
        }
        break;
    }
}

void
MetroRouter::runAllocation(Cycle cycle)
{
    if (pendingScratch_.empty())
        return;

    std::vector<AllocRequest> requests;
    requests.reserve(pendingScratch_.size());
    for (const auto &req : pendingScratch_)
        requests.push_back({req.fwd, req.direction});

    lastGrants_ = allocateCrossbar(
        requests, availScratch_, config_.dilation,
        randomSource_->wordForCycle(cycle),
        config_.randomSelection);

    for (std::size_t k = 0; k < pendingScratch_.size(); ++k) {
        const auto &req = pendingScratch_[k];
        const auto &grant = lastGrants_[k];
        const PortIndex p = req.fwd;
        ++*cRequests_;

        if (grant.granted()) {
            ++*cGrants_;
            if (observer_ != nullptr)
                observer_->onGrant(id_, stage_, req.header.msgId,
                                   cycle);
            fState_[p] = FwdPortState::ConnectedFwd;
            fBwd_[p] = grant.backwardPort;
            fDirection_[p] = req.direction;
            fMsgId_[p] = req.header.msgId;
            fCrc_[p].reset();
            fLastActivity_[p] = cycle;
            bBusy_[grant.backwardPort] = 1;
            bOwner_[grant.backwardPort] = req.fwd;
            availDirty_ = true;

            const unsigned bits = directionBits();
            fPosAfter_[p] =
                static_cast<std::uint16_t>(req.header.routePos + bits);

            if (params_.headerWords > 0) {
                // Pipelined setup: this word plus hw-1 more are
                // consumed from the stream head.
                fConsumeLeft_[p] = params_.headerWords - 1;
                fFirstHeaderDone_[p] = 1;
                fSwallowFirst_[p] = 0;
                ++*cHeaderConsumed_;
            } else {
                fConsumeLeft_[p] = 0;
                fFirstHeaderDone_[p] = 0;
                const unsigned w = params_.width;
                const unsigned word_end =
                    (req.header.routePos / w + 1) * w;
                const unsigned limit = std::min<unsigned>(
                    word_end, req.header.routeLen);
                fSwallowFirst_[p] = config_.swallow[req.fwd] &&
                                    fPosAfter_[p] >= limit;
                // Route the first header word right now.
                if (fSwallowFirst_[p]) {
                    fFirstHeaderDone_[p] = 1;
                    ++*cHeaderSwallowed_;
                } else {
                    fFirstHeaderDone_[p] = 1;
                    forwardHeader(p, req.header);
                }
            }
        } else {
            ++*cBlocks_;
            if (observer_ != nullptr)
                observer_->onBlock(id_, stage_, req.header.msgId,
                                   cycle);
            fMsgId_[p] = req.header.msgId;
            fDirection_[p] = req.direction;
            fLastActivity_[p] = cycle;
            if (config_.fastReclaim[req.fwd]) {
                // Fast path reclamation: immediately propagate the
                // backward control bit; resources here are never
                // held.
                ++*cBcbSent_;
                fLink_[p]->pushUp(Symbol::control(SymbolKind::BcbDrop,
                                                  fMsgId_[p]));
                fState_[p] = FwdPortState::Draining;
            } else {
                fCrc_[p].reset();
                fState_[p] = FwdPortState::BlockedWait;
            }
        }
    }
}

void
MetroRouter::tick(Cycle cycle)
{
    lastGrants_.clear();
    if (dead_) {
        if (metrics_ != nullptr) {
            // A dead router consumes nothing: census the Data
            // words arriving on its lanes this cycle so the
            // conservation identity survives router failures.
            // Kind-only peeks never touch the fault PRNG.
            for (const auto *l : fLink_) {
                if (l != nullptr &&
                    l->peekKindDown() == SymbolKind::Data)
                    ++*mDiscardRouter_;
            }
            for (const auto *l : bLink_) {
                if (l != nullptr &&
                    l->peekKindUp() == SymbolKind::Data)
                    ++*mDiscardRouter_;
            }
        }
        return;
    }

    // Snapshot availability before any teardown this cycle: a port
    // freed in cycle t accepts new connections from t+1, which also
    // guarantees single-push-per-lane. Mid-tick mutations only mark
    // the snapshot dirty, so the refill here reproduces exactly the
    // start-of-cycle state an every-tick refill saw.
    if (availDirty_) {
        fillAvailability();
        availDirty_ = false;
    }

    std::fill(bRevRead_.begin(), bRevRead_.end(), 0);

    pendingScratch_.clear();
    for (PortIndex p = 0; p < fLink_.size(); ++p)
        processForwardPort(p, cycle);

    runAllocation(cycle);

    if (metrics_ != nullptr) {
        // Word conservation: census the reverse lanes no connection
        // handler consumed this cycle (freed, never-owned, or
        // just-granted ports) — Data arriving there evaporates.
        // peekUp() never touches the fault PRNG, so the census is
        // invisible to the simulation proper.
        unsigned busyPorts = 0;
        for (std::size_t b = 0; b < bLink_.size(); ++b) {
            if (bBusy_[b])
                ++busyPorts;
            if (bLink_[b] != nullptr && !bRevRead_[b] &&
                bLink_[b]->peekKindUp() == SymbolKind::Data) {
                ++*mDiscardRouter_;
            }
        }
        occupancy_->sample(busyPorts);
    }

    // Off Port Drive Output (Table 2): disabled backward ports with
    // drive enabled hold the wire at DATA-IDLE. Armed only while
    // some disabled port has drive configured (rare).
    if (offPortDriveArmed_) {
        for (PortIndex b = 0; b < bLink_.size(); ++b) {
            if (!config_.backwardEnabled[b] &&
                config_.offPortDrive[b] && bLink_[b] != nullptr &&
                !bBusy_[b]) {
                bLink_[b]->pushDown(
                    Symbol::control(SymbolKind::DataIdle));
            }
        }
    }
}

void
MetroRouter::setForwardEnabled(PortIndex p, bool enabled)
{
    METRO_ASSERT(p < fLink_.size(), "forward port %u out of range", p);
    wake();
    if (!enabled)
        teardownPort(p);
    config_.forwardEnabled[p] = enabled;
}

void
MetroRouter::setBackwardEnabled(PortIndex p, bool enabled)
{
    METRO_ASSERT(p < bLink_.size(), "backward port %u out of range", p);
    wake();
    if (!enabled && bBusy_[p])
        teardownPort(bOwner_[p]);
    config_.backwardEnabled[p] = enabled;
    availDirty_ = true;
    refreshOffPortDrive();
}

void
MetroRouter::setFastReclaim(PortIndex p, bool fast)
{
    METRO_ASSERT(p < fLink_.size(), "forward port %u out of range", p);
    wake();
    config_.fastReclaim[p] = fast;
}

void
MetroRouter::setDilation(unsigned dilation)
{
    wake();
    RouterConfig next = config_;
    next.dilation = dilation;
    next.validate(params_);
    config_ = next;
    availDirty_ = true;
    refreshOffPortDrive();
}

FwdPortState
MetroRouter::forwardState(PortIndex p) const
{
    METRO_ASSERT(p < fLink_.size(), "forward port %u out of range", p);
    return fState_[p];
}

bool
MetroRouter::backwardBusy(PortIndex p) const
{
    METRO_ASSERT(p < bLink_.size(), "backward port %u out of range", p);
    return bBusy_[p] != 0;
}

PortIndex
MetroRouter::connectedBackward(PortIndex fwd) const
{
    METRO_ASSERT(fwd < fLink_.size(), "forward port %u out of range",
                 fwd);
    return fBwd_[fwd];
}

bool
MetroRouter::canSleep() const
{
    // Any attached active link may deliver a symbol (or, dead with
    // words still draining, needs its exit census observed): stay
    // awake until every lane is fast-pathed.
    for (const auto *l : fLink_) {
        if (l != nullptr && l->active())
            return false;
    }
    for (const auto *l : bLink_) {
        if (l != nullptr && l->active())
            return false;
    }
    // A dead router's tick is a pure peek census — a no-op on
    // drained lanes regardless of connection state left behind.
    if (dead_)
        return true;
    if (!quiescent())
        return false;
    // Off Port Drive (Table 2) pushes DATA-IDLE every tick. The
    // check cannot be replaced by "the driven link is active": a
    // wake between the drive becoming effective and our next tick
    // (e.g. setBackwardEnabled(false)) would otherwise re-sleep us
    // before the first DATA-IDLE ever goes out.
    for (PortIndex b = 0; b < bLink_.size(); ++b) {
        if (!config_.backwardEnabled[b] && config_.offPortDrive[b] &&
            bLink_[b] != nullptr && !bBusy_[b])
            return false;
    }
    return true;
}

void
MetroRouter::syncSkipped(Cycle from, Cycle upto)
{
    // An eagerly-ticked quiescent router samples its (zero) busy
    // backward-port count every cycle; a dead one samples nothing.
    // Catch up in one batch so the per-router occupancy histogram
    // is bit-identical with the scheduler on and off.
    if (metrics_ != nullptr && !dead_ && upto > from)
        occupancy_->sample(0, upto - from);
}

bool
MetroRouter::quiescent() const
{
    for (const auto state : fState_) {
        if (state != FwdPortState::Idle)
            return false;
    }
    for (const auto busy : bBusy_) {
        if (busy)
            return false;
    }
    return true;
}

Symbol
MetroRouter::lastTestSymbol(PortIndex p) const
{
    METRO_ASSERT(p < fLink_.size(), "forward port %u out of range", p);
    return fLastTest_[p];
}

void
MetroRouter::driveTestSymbol(PortIndex p, const Symbol &s)
{
    METRO_ASSERT(p < bLink_.size(), "backward port %u out of range", p);
    METRO_ASSERT(!config_.backwardEnabled[p],
                 "test drive requires a disabled port");
    METRO_ASSERT(bLink_[p] != nullptr, "port %u unattached", p);
    bLink_[p]->pushDown(s);
}

void
MetroRouter::releaseBackward(PortIndex b)
{
    METRO_ASSERT(b < bLink_.size(), "backward port %u out of range", b);
    if (bBusy_[b]) {
        counters_.add("cascadeShutdown");
        freeConnection(bOwner_[b]);
    }
}

void
MetroRouter::shutdownAllConnections()
{
    for (PortIndex p = 0; p < fLink_.size(); ++p) {
        if (fState_[p] != FwdPortState::Idle) {
            counters_.add("cascadeShutdown");
            freeConnection(p);
        }
    }
}

} // namespace metro
