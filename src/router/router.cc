#include "router/router.hh"

#include <algorithm>

#include "common/bitops.hh"

namespace metro
{

const char *
fwdPortStateName(FwdPortState state)
{
    switch (state) {
      case FwdPortState::Idle: return "Idle";
      case FwdPortState::ConnectedFwd: return "ConnectedFwd";
      case FwdPortState::ConnectedRev: return "ConnectedRev";
      case FwdPortState::BlockedWait: return "BlockedWait";
      case FwdPortState::BlockedDrop: return "BlockedDrop";
      case FwdPortState::Draining: return "Draining";
    }
    return "?";
}

MetroRouter::MetroRouter(RouterId id, const RouterParams &params,
                         const RouterConfig &config, std::uint64_t seed)
    : Component("router" + std::to_string(id)),
      id_(id), params_(params), config_(config),
      randomSource_(std::make_shared<RandomSource>(seed)),
      randomOutput_(seed ^ 0x0badc0deULL),
      misrouteRng_(seed ^ 0xdeadbeefULL)
{
    params_.validate();
    config_.validate(params_);
    fwd_.resize(params_.numForward);
    bwd_.resize(params_.numBackward);
}

bool
MetroRouter::randomOutputBit(Cycle cycle) const
{
    // Derived from the component's own seed stream, NOT the shared
    // random inputs — a cascade fed from one member's output must
    // not correlate with any member's input consumption.
    return (randomOutput_.wordForCycle(cycle) & 1) != 0;
}

void
MetroRouter::setMetrics(MetricsRegistry *metrics)
{
    metrics_ = metrics;
    if (metrics == nullptr) {
        mDiscardRouter_ = &scratch_;
        mDiscardBlock_ = &scratch_;
        occupancy_ = nullptr;
        return;
    }
    // Word-conservation sinks are network-wide totals; occupancy is
    // per-router. Slot references stay valid for the registry's
    // lifetime, so the hot paths below are bare increments.
    mDiscardRouter_ = &metrics->counter("words.discarded.router");
    mDiscardBlock_ = &metrics->counter("words.discarded.block");
    occupancy_ = &metrics->histogram(
        "router." + std::to_string(id_) + ".occupancy");
}

void
MetroRouter::attachForward(PortIndex p, Link *link)
{
    METRO_ASSERT(p < fwd_.size(), "forward port %u out of range", p);
    fwd_[p].link = link;
    // A forward port reads the link's down lane: the router sits at
    // the B end and must wake when anything is pushed toward it.
    link->setWakeB(this);
}

void
MetroRouter::attachBackward(PortIndex p, Link *link)
{
    METRO_ASSERT(p < bwd_.size(), "backward port %u out of range", p);
    bwd_[p].link = link;
    // A backward port reads the link's up lane (A end).
    link->setWakeA(this);
}

unsigned
MetroRouter::directionBits() const
{
    return log2Ceil(config_.radix());
}

unsigned
MetroRouter::extractDirection(const Symbol &header, Cycle cycle)
{
    const unsigned bits = directionBits();
    if (bits == 0)
        return 0;
    if (misroute_) {
        // Header-decode fault: the direction decoded bears no
        // relation to the requested one.
        (void)cycle;
        return static_cast<unsigned>(
            misrouteRng_.below(config_.radix()));
    }
    METRO_ASSERT(header.routePos + bits <= header.routeLen,
                 "route spec exhausted: pos %u + %u > len %u "
                 "(router %u)", header.routePos, bits, header.routeLen,
                 id_);
    return static_cast<unsigned>(
        (header.route >> header.routePos) & lowMask(bits));
}

std::vector<bool>
MetroRouter::availabilitySnapshot() const
{
    std::vector<bool> avail(bwd_.size(), false);
    for (std::size_t b = 0; b < bwd_.size(); ++b) {
        // Only the first backwardPortsUsed ports participate in
        // this network position (e.g. a dilation-1 radix-4 use of
        // an 8-output component wires only 4 outputs).
        avail[b] = b < config_.backwardPortsUsed &&
                   config_.backwardEnabled[b] && !bwd_[b].busy &&
                   bwd_[b].link != nullptr;
    }
    return avail;
}

Symbol
MetroRouter::makeStatus(const FwdPort &port, bool blocked) const
{
    StatusWord sw;
    sw.router = id_;
    sw.stage = stage_;
    sw.blocked = blocked;
    sw.checksum = port.crc.value();
    sw.port = port.bwd;
    Symbol s;
    s.kind = SymbolKind::Status;
    s.value = sw.encode();
    s.msgId = port.msgId;
    return s;
}

void
MetroRouter::pushStatusUp(PortIndex p, bool blocked)
{
    fwd_[p].link->pushUp(makeStatus(fwd_[p], blocked));
}

void
MetroRouter::pushStatusDown(PortIndex p, bool blocked)
{
    auto &port = fwd_[p];
    METRO_ASSERT(port.bwd != kInvalidPort, "status down w/o bwd port");
    bwd_[port.bwd].link->pushDown(makeStatus(port, blocked));
}

void
MetroRouter::freeConnection(PortIndex p)
{
    auto &port = fwd_[p];
    if (port.bwd != kInvalidPort) {
        bwd_[port.bwd].busy = false;
        bwd_[port.bwd].owner = kInvalidPort;
        port.bwd = kInvalidPort;
    }
    port.state = FwdPortState::Idle;
    port.consumeLeft = 0;
    port.firstHeaderDone = false;
    port.swallowFirst = false;
}

void
MetroRouter::teardownPort(PortIndex p)
{
    if (fwd_[p].state != FwdPortState::Idle) {
        counters_.add("scanTeardown");
        freeConnection(p);
    }
}

void
MetroRouter::forwardHeader(FwdPort &port, Symbol sym)
{
    sym.routePos = port.posAfter;
    bwd_[port.bwd].link->pushDown(sym);
}

void
MetroRouter::handleConnectedFwd(PortIndex p, const Symbol &sym,
                                Cycle cycle)
{
    auto &port = fwd_[p];
    Link *down = bwd_[port.bwd].link;

    // Reverse-lane control first: a backward-control-bit drop from
    // a blocked router downstream reclaims this path segment.
    bwd_[port.bwd].revRead = true;
    const Symbol rsym = down->headUp();
    if (rsym.kind == SymbolKind::BcbDrop) {
        counters_.add("bcbForwarded");
        port.lastActivity = cycle;
        // Releasing the crosspoint makes the downstream channel go
        // undriven; the draining router below sees its stream end.
        // Model that with an explicit Drop down the old port.
        down->pushDown(Symbol::control(SymbolKind::Drop, port.msgId));
        bwd_[port.bwd].busy = false;
        bwd_[port.bwd].owner = kInvalidPort;
        port.bwd = kInvalidPort;
        port.link->pushUp(Symbol::control(SymbolKind::BcbDrop,
                                          port.msgId));
        port.state = FwdPortState::Draining;
        if (sym.kind == SymbolKind::Data)
            ++*mDiscardRouter_;
        return;
    }
    if (rsym.kind == SymbolKind::Drop) {
        // Downstream cleanup (e.g. idle timeout there): release and
        // inform upstream.
        counters_.add("reverseDropFwd");
        port.link->pushUp(rsym);
        freeConnection(p);
        if (sym.kind == SymbolKind::Data)
            ++*mDiscardRouter_;
        return;
    }
    if (rsym.occupied()) {
        counters_.add("strayReverseSymbol");
        if (rsym.kind == SymbolKind::Data)
            ++*mDiscardRouter_;
    }

    if (sym.occupied())
        port.lastActivity = cycle;

    switch (sym.kind) {
      case SymbolKind::Empty:
        break;
      case SymbolKind::Header:
        if (port.consumeLeft > 0) {
            --port.consumeLeft;
            counters_.add("headerConsumed");
        } else if (!port.firstHeaderDone && port.swallowFirst) {
            port.firstHeaderDone = true;
            counters_.add("headerSwallowed");
        } else {
            port.firstHeaderDone = true;
            forwardHeader(port, sym);
        }
        break;
      case SymbolKind::Data:
        port.crc.update(sym.value, params_.width);
        [[fallthrough]];
      case SymbolKind::Checksum:
      case SymbolKind::DataIdle:
      case SymbolKind::Ack:
      case SymbolKind::Test:
        if (port.consumeLeft > 0) {
            // Pipelined connection setup consumes words blindly
            // from the stream head.
            --port.consumeLeft;
            counters_.add("headerConsumed");
            if (sym.kind == SymbolKind::Data)
                ++*mDiscardRouter_;
        } else {
            down->pushDown(sym);
            counters_.add("wordsForwarded");
        }
        break;
      case SymbolKind::Turn:
        // Forward the TURN downstream, inject our status into the
        // newly-reversed stream, and flip direction.
        down->pushDown(sym);
        pushStatusUp(p, false);
        counters_.add("turns");
        port.state = FwdPortState::ConnectedRev;
        break;
      case SymbolKind::Drop:
        down->pushDown(sym);
        freeConnection(p);
        counters_.add("drops");
        break;
      case SymbolKind::Status:
      case SymbolKind::BcbDrop:
        counters_.add("strayForwardSymbol");
        break;
    }
}

void
MetroRouter::handleConnectedRev(PortIndex p, const Symbol &sym,
                                Cycle cycle)
{
    auto &port = fwd_[p];
    Link *down = bwd_[port.bwd].link;
    Link *up = port.link;

    // The forward lane should be quiet while reversed — except for
    // a Drop: the source-responsible endpoint aborts a connection
    // whose reply went missing (watchdog) by closing it from its
    // side. Honour the abort: free this segment and pass the Drop
    // on so the rest of the path unwinds too.
    if (sym.kind == SymbolKind::Drop) {
        counters_.add("abortDrops");
        down->pushDown(sym);
        freeConnection(p);
        return;
    }
    if (sym.occupied()) {
        // Anything else is in-flight debris of a dead attempt;
        // discard without refreshing the idle clock so a half-dead
        // connection still times out.
        counters_.add("strayForwardSymbol");
        if (sym.kind == SymbolKind::Data)
            ++*mDiscardRouter_;
    }

    bwd_[port.bwd].revRead = true;
    const Symbol rsym = down->headUp();
    if (rsym.occupied())
        port.lastActivity = cycle;

    switch (rsym.kind) {
      case SymbolKind::Empty:
        // Hold the connection open through reversal-transient and
        // variable-delay gaps (Section 5.1, Data Idle).
        up->pushUp(Symbol::control(SymbolKind::DataIdle, port.msgId));
        break;
      case SymbolKind::Data:
        port.crc.update(rsym.value, params_.width);
        up->pushUp(rsym);
        counters_.add("wordsForwarded");
        break;
      case SymbolKind::DataIdle:
      case SymbolKind::Checksum:
      case SymbolKind::Status:
      case SymbolKind::Ack:
      case SymbolKind::Test:
      case SymbolKind::Header:
        up->pushUp(rsym);
        if (rsym.kind != SymbolKind::DataIdle &&
            rsym.kind != SymbolKind::Status)
            counters_.add("wordsForwarded");
        break;
      case SymbolKind::Turn:
        // Turn back toward the forward direction: forward the TURN
        // upstream, inject our status toward the new downstream.
        up->pushUp(rsym);
        pushStatusDown(p, false);
        counters_.add("turns");
        port.state = FwdPortState::ConnectedFwd;
        break;
      case SymbolKind::Drop:
        up->pushUp(rsym);
        freeConnection(p);
        counters_.add("drops");
        break;
      case SymbolKind::BcbDrop:
        // A connection can block downstream after we reversed only
        // in exotic race conditions; reclaim identically (see the
        // ConnectedFwd case for the Drop-down rationale).
        counters_.add("bcbForwarded");
        down->pushDown(Symbol::control(SymbolKind::Drop, port.msgId));
        bwd_[port.bwd].busy = false;
        bwd_[port.bwd].owner = kInvalidPort;
        port.bwd = kInvalidPort;
        up->pushUp(Symbol::control(SymbolKind::BcbDrop, port.msgId));
        port.state = FwdPortState::Draining;
        break;
    }
}

void
MetroRouter::processForwardPort(PortIndex p, Cycle cycle,
                                std::vector<PendingRequest> &pending)
{
    auto &port = fwd_[p];
    if (port.link == nullptr)
        return;

    const Symbol sym = port.link->headDown();

    if (!config_.forwardEnabled[p]) {
        // Disabled port: isolated from normal operation; only scan
        // test patterns are observed (Section 5.1, Scan Support).
        if (sym.kind == SymbolKind::Test) {
            port.lastTest = sym;
        } else if (sym.occupied()) {
            counters_.add("disabledPortDiscard");
            if (sym.kind == SymbolKind::Data)
                ++*mDiscardRouter_;
        }
        return;
    }

    // Idle-timeout cleanup (simulator extension; see RouterConfig).
    if (config_.idleTimeout > 0 && port.state != FwdPortState::Idle &&
        !sym.occupied() &&
        cycle - port.lastActivity > config_.idleTimeout) {
        counters_.add("idleTimeouts");
        const auto drop =
            Symbol::control(SymbolKind::Drop, port.msgId);
        switch (port.state) {
          case FwdPortState::ConnectedFwd:
          case FwdPortState::ConnectedRev:
            bwd_[port.bwd].link->pushDown(drop);
            port.link->pushUp(drop);
            break;
          case FwdPortState::BlockedWait:
          case FwdPortState::BlockedDrop:
            port.link->pushUp(drop);
            break;
          case FwdPortState::Draining:
          case FwdPortState::Idle:
            break;
        }
        freeConnection(p);
        return;
    }

    switch (port.state) {
      case FwdPortState::Idle:
        if (sym.kind == SymbolKind::Header) {
            PendingRequest req;
            req.fwd = p;
            req.direction = extractDirection(sym, cycle);
            req.header = sym;
            pending.push_back(req);
        } else if (sym.occupied()) {
            // In-flight remains of a fast-reclaimed stream, or a
            // close marker racing a teardown: discard.
            counters_.add("idleDiscard");
            if (sym.kind == SymbolKind::Data)
                ++*mDiscardRouter_;
        }
        break;

      case FwdPortState::ConnectedFwd:
        handleConnectedFwd(p, sym, cycle);
        break;

      case FwdPortState::ConnectedRev:
        handleConnectedRev(p, sym, cycle);
        break;

      case FwdPortState::BlockedWait:
        if (sym.occupied())
            port.lastActivity = cycle;
        switch (sym.kind) {
          case SymbolKind::Data:
            port.crc.update(sym.value, params_.width);
            counters_.add("blockedDiscard");
            ++*mDiscardBlock_;
            break;
          case SymbolKind::Turn:
            // Detailed reply: status (with blocked flag and the
            // checksum of everything received) then teardown.
            pushStatusUp(p, true);
            port.state = FwdPortState::BlockedDrop;
            counters_.add("blockedReplies");
            break;
          case SymbolKind::Drop:
            freeConnection(p);
            break;
          default:
            if (sym.occupied())
                counters_.add("blockedDiscard");
            break;
        }
        break;

      case FwdPortState::BlockedDrop:
        // The incoming symbol this cycle (already read) is not
        // processed; account a Data word so conservation holds.
        if (sym.kind == SymbolKind::Data)
            ++*mDiscardBlock_;
        port.link->pushUp(Symbol::control(SymbolKind::Drop,
                                          port.msgId));
        freeConnection(p);
        break;

      case FwdPortState::Draining:
        if (sym.kind == SymbolKind::Drop) {
            freeConnection(p);
        } else if (sym.occupied()) {
            port.lastActivity = cycle;
            counters_.add("drainedWords");
            if (sym.kind == SymbolKind::Data)
                ++*mDiscardRouter_;
        }
        break;
    }
}

void
MetroRouter::runAllocation(const std::vector<PendingRequest> &pending,
                           const std::vector<bool> &avail_snapshot,
                           Cycle cycle)
{
    if (pending.empty())
        return;

    std::vector<AllocRequest> requests;
    requests.reserve(pending.size());
    for (const auto &req : pending)
        requests.push_back({req.fwd, req.direction});

    lastGrants_ = allocateCrossbar(
        requests, avail_snapshot, config_.dilation,
        randomSource_->wordForCycle(cycle),
        config_.randomSelection);

    for (std::size_t k = 0; k < pending.size(); ++k) {
        const auto &req = pending[k];
        const auto &grant = lastGrants_[k];
        auto &port = fwd_[req.fwd];
        counters_.add("requests");

        if (grant.granted()) {
            counters_.add("grants");
            if (observer_ != nullptr)
                observer_->onGrant(id_, stage_, req.header.msgId,
                                   cycle);
            port.state = FwdPortState::ConnectedFwd;
            port.bwd = grant.backwardPort;
            port.direction = req.direction;
            port.msgId = req.header.msgId;
            port.crc.reset();
            port.lastActivity = cycle;
            bwd_[grant.backwardPort].busy = true;
            bwd_[grant.backwardPort].owner = req.fwd;

            const unsigned bits = directionBits();
            port.posAfter =
                static_cast<std::uint16_t>(req.header.routePos + bits);

            if (params_.headerWords > 0) {
                // Pipelined setup: this word plus hw-1 more are
                // consumed from the stream head.
                port.consumeLeft = params_.headerWords - 1;
                port.firstHeaderDone = true;
                port.swallowFirst = false;
                counters_.add("headerConsumed");
            } else {
                port.consumeLeft = 0;
                port.firstHeaderDone = false;
                const unsigned w = params_.width;
                const unsigned word_end =
                    (req.header.routePos / w + 1) * w;
                const unsigned limit = std::min<unsigned>(
                    word_end, req.header.routeLen);
                port.swallowFirst = config_.swallow[req.fwd] &&
                                    port.posAfter >= limit;
                // Route the first header word right now.
                if (port.swallowFirst) {
                    port.firstHeaderDone = true;
                    counters_.add("headerSwallowed");
                } else {
                    port.firstHeaderDone = true;
                    forwardHeader(port, req.header);
                }
            }
        } else {
            counters_.add("blocks");
            if (observer_ != nullptr)
                observer_->onBlock(id_, stage_, req.header.msgId,
                                   cycle);
            port.msgId = req.header.msgId;
            port.direction = req.direction;
            port.lastActivity = cycle;
            if (config_.fastReclaim[req.fwd]) {
                // Fast path reclamation: immediately propagate the
                // backward control bit; resources here are never
                // held.
                counters_.add("bcbSent");
                port.link->pushUp(Symbol::control(SymbolKind::BcbDrop,
                                                  port.msgId));
                port.state = FwdPortState::Draining;
            } else {
                port.crc.reset();
                port.state = FwdPortState::BlockedWait;
            }
        }
    }
}

void
MetroRouter::tick(Cycle cycle)
{
    lastGrants_.clear();
    if (dead_) {
        if (metrics_ != nullptr) {
            // A dead router consumes nothing: census the Data
            // words arriving on its lanes this cycle so the
            // conservation identity survives router failures.
            // peekDown()/peekUp() never touch the fault PRNG.
            for (const auto &f : fwd_) {
                if (f.link != nullptr &&
                    f.link->peekDown().kind == SymbolKind::Data)
                    ++*mDiscardRouter_;
            }
            for (const auto &b : bwd_) {
                if (b.link != nullptr &&
                    b.link->peekUp().kind == SymbolKind::Data)
                    ++*mDiscardRouter_;
            }
        }
        return;
    }

    // Snapshot availability before any teardown this cycle: a port
    // freed in cycle t accepts new connections from t+1, which also
    // guarantees single-push-per-lane.
    const auto avail = availabilitySnapshot();

    for (auto &b : bwd_)
        b.revRead = false;

    std::vector<PendingRequest> pending;
    for (PortIndex p = 0; p < fwd_.size(); ++p)
        processForwardPort(p, cycle, pending);

    runAllocation(pending, avail, cycle);

    if (metrics_ != nullptr) {
        // Word conservation: census the reverse lanes no connection
        // handler consumed this cycle (freed, never-owned, or
        // just-granted ports) — Data arriving there evaporates.
        // peekUp() never touches the fault PRNG, so the census is
        // invisible to the simulation proper.
        unsigned busyPorts = 0;
        for (const auto &b : bwd_) {
            if (b.busy)
                ++busyPorts;
            if (b.link != nullptr && !b.revRead &&
                b.link->peekUp().kind == SymbolKind::Data) {
                ++*mDiscardRouter_;
            }
        }
        occupancy_->sample(busyPorts);
    }

    // Off Port Drive Output (Table 2): disabled backward ports with
    // drive enabled hold the wire at DATA-IDLE.
    for (PortIndex b = 0; b < bwd_.size(); ++b) {
        if (!config_.backwardEnabled[b] && config_.offPortDrive[b] &&
            bwd_[b].link != nullptr && !bwd_[b].busy) {
            bwd_[b].link->pushDown(
                Symbol::control(SymbolKind::DataIdle));
        }
    }
}

void
MetroRouter::setForwardEnabled(PortIndex p, bool enabled)
{
    METRO_ASSERT(p < fwd_.size(), "forward port %u out of range", p);
    wake();
    if (!enabled)
        teardownPort(p);
    config_.forwardEnabled[p] = enabled;
}

void
MetroRouter::setBackwardEnabled(PortIndex p, bool enabled)
{
    METRO_ASSERT(p < bwd_.size(), "backward port %u out of range", p);
    wake();
    if (!enabled && bwd_[p].busy)
        teardownPort(bwd_[p].owner);
    config_.backwardEnabled[p] = enabled;
}

void
MetroRouter::setFastReclaim(PortIndex p, bool fast)
{
    METRO_ASSERT(p < fwd_.size(), "forward port %u out of range", p);
    wake();
    config_.fastReclaim[p] = fast;
}

void
MetroRouter::setDilation(unsigned dilation)
{
    wake();
    RouterConfig next = config_;
    next.dilation = dilation;
    next.validate(params_);
    config_ = next;
}

FwdPortState
MetroRouter::forwardState(PortIndex p) const
{
    METRO_ASSERT(p < fwd_.size(), "forward port %u out of range", p);
    return fwd_[p].state;
}

bool
MetroRouter::backwardBusy(PortIndex p) const
{
    METRO_ASSERT(p < bwd_.size(), "backward port %u out of range", p);
    return bwd_[p].busy;
}

PortIndex
MetroRouter::connectedBackward(PortIndex fwd) const
{
    METRO_ASSERT(fwd < fwd_.size(), "forward port %u out of range",
                 fwd);
    return fwd_[fwd].bwd;
}

bool
MetroRouter::canSleep() const
{
    // Any attached active link may deliver a symbol (or, dead with
    // words still draining, needs its exit census observed): stay
    // awake until every lane is fast-pathed.
    for (const auto &f : fwd_) {
        if (f.link != nullptr && f.link->active())
            return false;
    }
    for (const auto &b : bwd_) {
        if (b.link != nullptr && b.link->active())
            return false;
    }
    // A dead router's tick is a pure peek census — a no-op on
    // drained lanes regardless of connection state left behind.
    if (dead_)
        return true;
    if (!quiescent())
        return false;
    // Off Port Drive (Table 2) pushes DATA-IDLE every tick. The
    // check cannot be replaced by "the driven link is active": a
    // wake between the drive becoming effective and our next tick
    // (e.g. setBackwardEnabled(false)) would otherwise re-sleep us
    // before the first DATA-IDLE ever goes out.
    for (PortIndex b = 0; b < bwd_.size(); ++b) {
        if (!config_.backwardEnabled[b] && config_.offPortDrive[b] &&
            bwd_[b].link != nullptr && !bwd_[b].busy)
            return false;
    }
    return true;
}

void
MetroRouter::syncSkipped(Cycle from, Cycle upto)
{
    // An eagerly-ticked quiescent router samples its (zero) busy
    // backward-port count every cycle; a dead one samples nothing.
    // Catch up in one batch so the per-router occupancy histogram
    // is bit-identical with the scheduler on and off.
    if (metrics_ != nullptr && !dead_ && upto > from)
        occupancy_->sample(0, upto - from);
}

bool
MetroRouter::quiescent() const
{
    for (const auto &p : fwd_) {
        if (p.state != FwdPortState::Idle)
            return false;
    }
    for (const auto &b : bwd_) {
        if (b.busy)
            return false;
    }
    return true;
}

Symbol
MetroRouter::lastTestSymbol(PortIndex p) const
{
    METRO_ASSERT(p < fwd_.size(), "forward port %u out of range", p);
    return fwd_[p].lastTest;
}

void
MetroRouter::driveTestSymbol(PortIndex p, const Symbol &s)
{
    METRO_ASSERT(p < bwd_.size(), "backward port %u out of range", p);
    METRO_ASSERT(!config_.backwardEnabled[p],
                 "test drive requires a disabled port");
    METRO_ASSERT(bwd_[p].link != nullptr, "port %u unattached", p);
    bwd_[p].link->pushDown(s);
}

void
MetroRouter::releaseBackward(PortIndex b)
{
    METRO_ASSERT(b < bwd_.size(), "backward port %u out of range", b);
    if (bwd_[b].busy) {
        counters_.add("cascadeShutdown");
        freeConnection(bwd_[b].owner);
    }
}

void
MetroRouter::shutdownAllConnections()
{
    for (PortIndex p = 0; p < fwd_.size(); ++p) {
        if (fwd_[p].state != FwdPortState::Idle) {
            counters_.add("cascadeShutdown");
            freeConnection(p);
        }
    }
}

} // namespace metro
