/**
 * @file
 * METRO architectural parameters (paper Table 1).
 *
 * The METRO architecture separates fundamental behaviour from
 * implementation parameters; a RouterParams value picks one concrete
 * implementation out of the family (e.g. METROJR is
 * i = o = w = 4, hw = 0, dp = 1, max_d = 2).
 */

#ifndef METRO_ROUTER_PARAMS_HH
#define METRO_ROUTER_PARAMS_HH

#include <string>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace metro
{

/**
 * Architectural parameters of a METRO router implementation,
 * mirroring paper Table 1. All constraints from the table are
 * enforced by validate().
 */
struct RouterParams
{
    /** sp — number of scan paths (multiTAP), ≥ 1. */
    unsigned scanPaths = 1;

    /** w — bit width of the data channel, ≥ log2(o). */
    unsigned width = 8;

    /** max_d — maximum dilation; power of two, ≤ o. */
    unsigned maxDilation = 2;

    /** i — number of forward ports; power of two. */
    unsigned numForward = 8;

    /** o — number of backward ports; power of two, ≥ max_d. */
    unsigned numBackward = 8;

    /** ri — number of random inputs, ≥ 1. */
    unsigned randomInputs = 2;

    /** hw — header words consumed per router, ≥ 0. */
    unsigned headerWords = 0;

    /** dp — data pipestages inside the router, ≥ 1. */
    unsigned dataPipeStages = 1;

    /** max_vtd — maximum delay slots for variable turn delay, ≥ 0. */
    unsigned maxVtd = 8;

    /**
     * Check every Table 1 constraint; fatal() on violation (these
     * are user configuration errors, not simulator bugs).
     */
    void
    validate() const
    {
        if (scanPaths < 1)
            METRO_FATAL("sp must be >= 1 (got %u)", scanPaths);
        if (numForward == 0 || !isPowerOfTwo(numForward))
            METRO_FATAL("i must be a power of two (got %u)",
                        numForward);
        if (numBackward == 0 || !isPowerOfTwo(numBackward))
            METRO_FATAL("o must be a power of two (got %u)",
                        numBackward);
        if (maxDilation == 0 || !isPowerOfTwo(maxDilation))
            METRO_FATAL("max_d must be a power of two (got %u)",
                        maxDilation);
        if (maxDilation > numBackward)
            METRO_FATAL("max_d (%u) must be <= o (%u)", maxDilation,
                        numBackward);
        if (width < log2Ceil(numBackward))
            METRO_FATAL("w (%u) must be >= log2(o) (%u)", width,
                        log2Ceil(numBackward));
        if (width > 32)
            METRO_FATAL("simulator supports w <= 32 (got %u)", width);
        if (randomInputs < 1)
            METRO_FATAL("ri must be >= 1 (got %u)", randomInputs);
        if (dataPipeStages < 1)
            METRO_FATAL("dp must be >= 1 (got %u)", dataPipeStages);
    }

    /** The parameter set of the METROJR minimal implementation. */
    static RouterParams
    metroJr()
    {
        RouterParams p;
        p.width = 4;
        p.numForward = 4;
        p.numBackward = 4;
        p.maxDilation = 2;
        p.headerWords = 0;
        p.dataPipeStages = 1;
        return p;
    }

    /**
     * An RN1-flavoured parameter set (the METRO ancestor): 8 ports,
     * byte-wide datapath, dilation up to 2, single pipeline stage.
     */
    static RouterParams
    rn1()
    {
        RouterParams p;
        p.width = 8;
        p.numForward = 8;
        p.numBackward = 8;
        p.maxDilation = 2;
        p.headerWords = 0;
        p.dataPipeStages = 1;
        return p;
    }
};

} // namespace metro

#endif // METRO_ROUTER_PARAMS_HH
