#include "router/allocator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"

namespace metro
{

std::vector<AllocGrant>
allocateCrossbar(const std::vector<AllocRequest> &requests,
                 const std::vector<bool> &available, unsigned dilation,
                 std::uint64_t random_word, bool randomize)
{
    METRO_ASSERT(dilation > 0, "dilation must be positive");
    METRO_ASSERT(available.size() % dilation == 0,
                 "available mask (%zu ports) is not a whole number "
                 "of dilation-%u groups",
                 available.size(), dilation);

    std::vector<AllocGrant> result(requests.size());
    const unsigned num_directions =
        static_cast<unsigned>(available.size()) / dilation;

    // Group request indices by direction, preserving forward-port
    // order so the random rotation below is the only source of
    // priority variation (and is identical across a cascade group).
    std::vector<std::vector<std::size_t>> by_dir(num_directions);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const auto &req = requests[i];
        METRO_ASSERT(req.direction < num_directions,
                     "request direction %u out of range (radix %u)",
                     req.direction, num_directions);
        result[i].forwardPort = req.forwardPort;
        by_dir[req.direction].push_back(i);
    }

    for (unsigned dir = 0; dir < num_directions; ++dir) {
        auto &reqs = by_dir[dir];
        if (reqs.empty())
            continue;

        // Free ports of this direction's group.
        std::vector<PortIndex> free_ports;
        for (unsigned k = 0; k < dilation; ++k) {
            const PortIndex b = dir * dilation + k;
            if (available[b])
                free_ports.push_back(b);
        }

        // Deterministic per-direction random stream derived from
        // the shared word: identical across cascaded routers.
        Xoshiro256 draw(random_word ^
                        (0x9e3779b97f4a7c15ULL * (dir + 1)));

        // Rotate request priority randomly.
        if (randomize && reqs.size() > 1) {
            const auto rot = static_cast<std::size_t>(
                draw.below(reqs.size()));
            std::rotate(reqs.begin(), reqs.begin() + rot, reqs.end());
        }

        for (std::size_t idx : reqs) {
            if (free_ports.empty())
                break; // remaining requests stay blocked
            const auto pick =
                randomize ? static_cast<std::size_t>(
                                draw.below(free_ports.size()))
                          : 0;
            result[idx].backwardPort = free_ports[pick];
            free_ports.erase(free_ports.begin() +
                             static_cast<std::ptrdiff_t>(pick));
        }
    }

    return result;
}

} // namespace metro
