/**
 * @file
 * Runtime-configurable router options (paper Table 2).
 *
 * All of these are set through the scan/TAP interface in hardware;
 * the simulator exposes them through RouterConfig and the Tap class.
 * Port enables and fast-reclaim mode may be changed while the router
 * is in use (Section 5.3); dilation, turn delay, and swallow are
 * normally static.
 */

#ifndef METRO_ROUTER_CONFIG_HH
#define METRO_ROUTER_CONFIG_HH

#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "router/params.hh"

namespace metro
{

/**
 * Per-use configuration of one router instance (paper Table 2).
 */
struct RouterConfig
{
    /**
     * d — effective dilation: any power of two up to maxDilation
     * (Section 5.1, "Configurable Dilation"). Radix r = o / d.
     */
    unsigned dilation = 2;

    /**
     * Number of backward ports actually wired in this network
     * position; must be r * d for the *configured* radix. Networks
     * like Figure 1's final stage use only radix-many outputs of a
     * dilation-1 router. Defaults to numBackward.
     */
    unsigned backwardPortsUsed = 0;

    /** Port On/Off — per forward port. */
    std::vector<bool> forwardEnabled;

    /** Port On/Off — per backward port. */
    std::vector<bool> backwardEnabled;

    /**
     * Off Port Drive Output (Table 2) — per backward port: when the
     * port is disabled, actively drive the wire with DATA-IDLE
     * instead of leaving it undriven (prevents a floating input at
     * the neighbour during maintenance).
     */
    std::vector<bool> offPortDrive;

    /**
     * Fast Reclaim — per forward port: true = propagate the
     * backward control bit immediately on blocking; false = hold
     * the connection for a detailed status reply on TURN
     * (Section 5.1, "Path Reclamation").
     */
    std::vector<bool> fastReclaim;

    /**
     * Swallow — per forward port, only meaningful when hw = 0:
     * consume the leading header word once its route bits are
     * exhausted (allows route specs longer than w bits).
     */
    std::vector<bool> swallow;

    /**
     * Turn Delay — per port (forward then backward), the number of
     * wire pipeline registers on the attached link. Informational
     * for the router (the latency itself lives on the Link); bounds
     * checked against maxVtd.
     */
    std::vector<unsigned> turnDelay;

    /**
     * Stochastic output selection (Section 4). Disabling it makes
     * the allocator deterministic (lowest free equivalent port,
     * fixed priority) — an ablation baseline only; real METRO
     * parts always randomize.
     */
    bool randomSelection = true;

    /**
     * Idle-timeout for open connections, in cycles. A simulator
     * extension beyond the paper: a connection that sees no symbol
     * for this long is torn down, so that injected dead-wire faults
     * cannot leak circuit resources forever. Never triggers in
     * fault-free operation. 0 disables.
     */
    unsigned idleTimeout = 0;

    /** Build a default config for a parameter set. */
    static RouterConfig
    defaults(const RouterParams &params)
    {
        RouterConfig c;
        c.dilation = params.maxDilation;
        c.backwardPortsUsed = params.numBackward;
        c.forwardEnabled.assign(params.numForward, true);
        c.backwardEnabled.assign(params.numBackward, true);
        c.fastReclaim.assign(params.numForward, true);
        c.swallow.assign(params.numForward, true);
        c.offPortDrive.assign(params.numBackward, false);
        c.turnDelay.assign(params.numForward + params.numBackward, 0);
        c.idleTimeout = 0;
        return c;
    }

    /** Radix implied by this configuration. */
    unsigned
    radix() const
    {
        METRO_ASSERT(dilation > 0 &&
                     backwardPortsUsed % dilation == 0,
                     "bad dilation/ports: %u/%u", dilation,
                     backwardPortsUsed);
        return backwardPortsUsed / dilation;
    }

    /** Validate against the architectural parameters. */
    void
    validate(const RouterParams &params) const
    {
        if (dilation == 0 || !isPowerOfTwo(dilation))
            METRO_FATAL("dilation must be a power of two (got %u)",
                        dilation);
        if (dilation > params.maxDilation)
            METRO_FATAL("dilation %u exceeds max_d %u", dilation,
                        params.maxDilation);
        if (backwardPortsUsed == 0 ||
            backwardPortsUsed > params.numBackward)
            METRO_FATAL("backwardPortsUsed %u out of range (o = %u)",
                        backwardPortsUsed, params.numBackward);
        if (backwardPortsUsed % dilation != 0)
            METRO_FATAL("backwardPortsUsed %u not divisible by "
                        "dilation %u", backwardPortsUsed, dilation);
        if (forwardEnabled.size() != params.numForward ||
            fastReclaim.size() != params.numForward ||
            swallow.size() != params.numForward)
            METRO_FATAL("per-forward-port config sized %zu, want %u",
                        forwardEnabled.size(), params.numForward);
        if (backwardEnabled.size() != params.numBackward ||
            offPortDrive.size() != params.numBackward)
            METRO_FATAL("per-backward-port config sized %zu, want %u",
                        backwardEnabled.size(), params.numBackward);
        if (turnDelay.size() !=
            params.numForward + params.numBackward)
            METRO_FATAL("turnDelay config sized %zu, want %u",
                        turnDelay.size(),
                        params.numForward + params.numBackward);
        for (unsigned td : turnDelay) {
            if (td > params.maxVtd)
                METRO_FATAL("turn delay %u exceeds max_vtd %u", td,
                            params.maxVtd);
        }
    }
};

} // namespace metro

#endif // METRO_ROUTER_CONFIG_HH
