/**
 * @file
 * Scan/TAP access model (paper Section 5.1, Scan Support).
 *
 * METRO integrates an IEEE 1149.1-style Test Access Port, extended
 * to multiple TAPs per component (multiTAP) so that a fault in a
 * scan path does not sever test access. The simulator models the
 * TAP behaviourally: configuration register access, per-port
 * disable for on-line fault isolation, and boundary test-pattern
 * drive/observe on *disabled* ports while the rest of the router
 * keeps routing live traffic.
 */

#ifndef METRO_ROUTER_TAP_HH
#define METRO_ROUTER_TAP_HH

#include <vector>

#include "common/logging.hh"
#include "router/router.hh"

namespace metro
{

/**
 * Multi-TAP scan access to one router. Operations go through a
 * selected scan path; paths can be marked faulty, and operations
 * transparently fail over to the next healthy path. With every
 * path faulty, operations fatal-out — the component has lost test
 * access entirely (the situation multiTAP exists to make
 * improbable).
 */
class Tap
{
  public:
    explicit Tap(MetroRouter *router)
        : router_(router),
          pathFaulty_(router->params().scanPaths, false)
    {}

    /** Mark one scan path faulty (fault-injection hook). */
    void
    setPathFaulty(unsigned path, bool faulty)
    {
        METRO_ASSERT(path < pathFaulty_.size(),
                     "scan path %u out of range", path);
        pathFaulty_[path] = faulty;
    }

    /** True when at least one scan path still works. */
    bool
    accessible() const
    {
        for (bool f : pathFaulty_) {
            if (!f)
                return true;
        }
        return false;
    }

    /** Read the full configuration register set. */
    const RouterConfig &
    readConfig()
    {
        requireAccess();
        return router_->config();
    }

    /** Per-port enables (Table 2: Port On/Off). @{ */
    void
    writeForwardEnable(PortIndex p, bool enabled)
    {
        requireAccess();
        router_->setForwardEnabled(p, enabled);
    }

    void
    writeBackwardEnable(PortIndex p, bool enabled)
    {
        requireAccess();
        router_->setBackwardEnabled(p, enabled);
    }
    /** @} */

    /** Fast-reclaim mode (Table 2), changeable during operation. */
    void
    writeFastReclaim(PortIndex p, bool fast)
    {
        requireAccess();
        router_->setFastReclaim(p, fast);
    }

    /** Effective dilation (Table 2). */
    void
    writeDilation(unsigned dilation)
    {
        requireAccess();
        router_->setDilation(dilation);
    }

    /**
     * Drive a boundary test pattern out a *disabled* backward port
     * (into the attached link, toward the neighbouring component's
     * disabled port).
     */
    void
    driveTest(PortIndex backward_port, Word pattern)
    {
        requireAccess();
        Symbol s;
        s.kind = SymbolKind::Test;
        s.value = pattern;
        router_->driveTestSymbol(backward_port, s);
    }

    /**
     * Observe the last test pattern that arrived at a disabled
     * forward port. Returns true and fills `pattern` when a test
     * symbol has been captured.
     */
    bool
    observeTest(PortIndex forward_port, Word &pattern)
    {
        requireAccess();
        const Symbol s = router_->lastTestSymbol(forward_port);
        if (s.kind != SymbolKind::Test)
            return false;
        pattern = s.value;
        return true;
    }

    /** The router behind this TAP. */
    MetroRouter *router() { return router_; }

  private:
    void
    requireAccess()
    {
        if (!accessible())
            METRO_FATAL("all %zu scan paths of router %u are faulty: "
                        "no test access", pathFaulty_.size(),
                        router_->id());
    }

    MetroRouter *router_;
    std::vector<bool> pathFaulty_;
};

} // namespace metro

#endif // METRO_ROUTER_TAP_HH
