#include "serve/supervisor.hh"

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/signal.hh"

namespace metro
{

namespace
{

std::uint64_t
monotonicMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** True if arg is a supervisor-only flag the child must not see. */
bool
isSupervisorFlag(const std::string &a)
{
    return a == "--supervise" || a.rfind("--restart-budget", 0) == 0 ||
           a.rfind("--stall-timeout-ms", 0) == 0 ||
           a.rfind("--restart-backoff-ms", 0) == 0;
}

/** True if arg is a one-shot crash-injection flag, or a restore
 *  request superseded by the supervisor's own --restore-auto;
 *  stripped from RESTARTED children only. */
bool
isFirstRunOnlyFlag(const std::string &a)
{
    return a.rfind("--crash-at-cycle", 0) == 0 ||
           a.rfind("--stall-at-cycle", 0) == 0 ||
           a.rfind("--restore", 0) == 0;
}

std::vector<std::string>
childArgs(const SupervisorConfig &config, bool restart)
{
    std::vector<std::string> out;
    out.reserve(config.args.size() + 1);
    for (const std::string &a : config.args) {
        if (isSupervisorFlag(a))
            continue;
        if (restart && isFirstRunOnlyFlag(a))
            continue;
        out.push_back(a);
    }
    if (restart)
        out.push_back("--restore-auto");
    return out;
}

/** Parse the sequence number out of a window record, i.e. a line
 *  beginning {"window":N. Returns false for every other line. */
bool
parseWindowSeq(const std::string &line, std::uint64_t *seq)
{
    static const char prefix[] = "{\"window\":";
    const size_t plen = sizeof(prefix) - 1;
    if (line.compare(0, plen, prefix) != 0)
        return false;
    size_t i = plen;
    if (i >= line.size() || line[i] < '0' || line[i] > '9')
        return false;
    std::uint64_t v = 0;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
        ++i;
    }
    *seq = v;
    return true;
}

/** Write all of buf to fd, retrying on EINTR / short writes. */
void
writeFull(int fd, const char *buf, size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, buf, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // our own stdout is gone; nothing left to do
        }
        buf += static_cast<size_t>(n);
        len -= static_cast<size_t>(n);
    }
}

/** Shared stream state across child incarnations. */
struct StreamState
{
    /** Next window sequence number not yet forwarded. */
    std::uint64_t nextSeq = 0;

    /** Set while recovering: crash detection time, cleared (and
     *  sampled into the MTTR sum) by the first NEW window record
     *  after the restart. */
    std::uint64_t downSinceMs = 0;
    std::uint64_t downtimeSumMs = 0;
    unsigned downtimeSamples = 0;
};

/** Forward one complete child line, deduplicating re-emitted
 *  windows after a restore. */
void
handleLine(const std::string &line, StreamState *st)
{
    std::uint64_t seq = 0;
    if (parseWindowSeq(line, &seq)) {
        if (seq < st->nextSeq)
            return; // replay of an already-forwarded window
        st->nextSeq = seq + 1;
        if (st->downSinceMs != 0) {
            st->downtimeSumMs += monotonicMs() - st->downSinceMs;
            st->downtimeSamples += 1;
            st->downSinceMs = 0;
        }
    }
    std::string out = line;
    out.push_back('\n');
    writeFull(STDOUT_FILENO, out.data(), out.size());
}

struct ChildOutcome
{
    bool stalled = false;
    int status = 0; // waitpid status
};

/**
 * Pump the child's stdout and heartbeat pipes until both close
 * (child exited) or the stall deadline passes (child SIGKILLed).
 * Forwards SIGINT/SIGTERM received by the supervisor to the child
 * so the graceful-stop path still drains through us.
 */
ChildOutcome
pumpChild(pid_t pid, int outFd, int hbFd, const SupervisorConfig &config,
          StreamState *st)
{
    ChildOutcome outcome;
    std::string pending;
    bool outOpen = true;
    bool hbOpen = true;
    bool stopForwarded = false;
    std::uint64_t lastProgressMs = monotonicMs();

    while (outOpen || hbOpen) {
        if (requestedStop() && !stopForwarded) {
            ::kill(pid, SIGTERM);
            stopForwarded = true;
            lastProgressMs = monotonicMs(); // grant a fresh drain window
        }

        struct pollfd fds[2];
        nfds_t nfds = 0;
        int outIdx = -1;
        int hbIdx = -1;
        if (outOpen) {
            outIdx = static_cast<int>(nfds);
            fds[nfds].fd = outFd;
            fds[nfds].events = POLLIN;
            ++nfds;
        }
        if (hbOpen) {
            hbIdx = static_cast<int>(nfds);
            fds[nfds].fd = hbFd;
            fds[nfds].events = POLLIN;
            ++nfds;
        }

        // Short poll slices keep the loop responsive to the stop
        // flag even when the child is silent.
        const int sliceMs = 100;
        const int n = ::poll(fds, nfds, sliceMs);
        if (n < 0 && errno != EINTR)
            break;

        char buf[4096];
        if (n > 0 && outIdx >= 0 && (fds[outIdx].revents & (POLLIN | POLLHUP))) {
            const ssize_t got = ::read(outFd, buf, sizeof(buf));
            if (got <= 0) {
                outOpen = false;
            } else {
                lastProgressMs = monotonicMs();
                pending.append(buf, static_cast<size_t>(got));
                size_t nl;
                while ((nl = pending.find('\n')) != std::string::npos) {
                    handleLine(pending.substr(0, nl), st);
                    pending.erase(0, nl + 1);
                }
            }
        }
        if (n > 0 && hbIdx >= 0 && (fds[hbIdx].revents & (POLLIN | POLLHUP))) {
            const ssize_t got = ::read(hbFd, buf, sizeof(buf));
            if (got <= 0)
                hbOpen = false;
            else
                lastProgressMs = monotonicMs();
        }

        if (!outcome.stalled &&
            monotonicMs() - lastProgressMs >= config.stallTimeoutMs) {
            // No window record and no heartbeat for the whole
            // deadline: the child is wedged. SIGKILL and keep
            // draining until the pipes close.
            ::kill(pid, SIGKILL);
            outcome.stalled = true;
        }
    }

    // An unterminated trailing fragment is a record the child died
    // inside; dropping it is what makes the stream replayable. A
    // cleanly-exited child always ends its output with a newline,
    // so flushing the remainder there is only a safety net.
    while (::waitpid(pid, &outcome.status, 0) < 0 && errno == EINTR) {
    }
    const bool cleanExit = !outcome.stalled && WIFEXITED(outcome.status);
    if (cleanExit && !pending.empty())
        handleLine(pending, st);
    return outcome;
}

/** Emit a {"supervisor":...} marker record on the merged stream. */
void
emitMarker(const char *json, size_t len)
{
    writeFull(STDOUT_FILENO, json, len);
}

/** Sleep for the crash-loop backoff, in slices so a stop request
 *  still interrupts promptly. */
void
backoffSleep(std::uint64_t ms)
{
    while (ms > 0 && !requestedStop()) {
        const std::uint64_t slice = ms < 50 ? ms : 50;
        ::usleep(static_cast<useconds_t>(slice * 1000));
        ms -= slice;
    }
}

} // namespace

int
runSupervisor(const SupervisorConfig &config)
{
    installStopHandlers();

    StreamState st;
    unsigned restarts = 0;
    char marker[256];

    for (;;) {
        const bool restart = restarts > 0;
        int outPipe[2];
        int hbPipe[2];
        if (::pipe(outPipe) != 0 || ::pipe(hbPipe) != 0) {
            std::fprintf(stderr, "metro_sim: supervisor: pipe: %s\n",
                         std::strerror(errno));
            return 1;
        }

        const pid_t pid = ::fork();
        if (pid < 0) {
            std::fprintf(stderr, "metro_sim: supervisor: fork: %s\n",
                         std::strerror(errno));
            return 1;
        }
        if (pid == 0) {
            // Child: stdout into the capture pipe, heartbeat fd
            // advertised via the environment, supervisor-only (and,
            // on restart, one-shot injection) flags stripped.
            ::dup2(outPipe[1], STDOUT_FILENO);
            ::close(outPipe[0]);
            ::close(outPipe[1]);
            ::close(hbPipe[0]);
            char fdBuf[16];
            std::snprintf(fdBuf, sizeof(fdBuf), "%d", hbPipe[1]);
            ::setenv("METRO_HEARTBEAT_FD", fdBuf, 1);
            if (restart)
                ::unsetenv("METRO_CRASH_AT_WRITE_BYTE");

            const std::vector<std::string> args = childArgs(config, restart);
            std::vector<char *> argv;
            argv.reserve(args.size() + 2);
            argv.push_back(const_cast<char *>(config.exe.c_str()));
            for (const std::string &a : args)
                argv.push_back(const_cast<char *>(a.c_str()));
            argv.push_back(nullptr);
            ::execvp(config.exe.c_str(), argv.data());
            std::fprintf(stderr, "metro_sim: supervisor: exec %s: %s\n",
                         config.exe.c_str(), std::strerror(errno));
            ::_exit(127);
        }

        // Parent.
        ::close(outPipe[1]);
        ::close(hbPipe[1]);
        const ChildOutcome out =
            pumpChild(pid, outPipe[0], hbPipe[0], config, &st);
        ::close(outPipe[0]);
        ::close(hbPipe[0]);

        const bool exited = !out.stalled && WIFEXITED(out.status);
        const int exitCode = exited ? WEXITSTATUS(out.status) : -1;
        if (exited && (exitCode == 0 || exitCode == 130)) {
            // Clean completion (or graceful operator stop).
            const int n = std::snprintf(
                marker, sizeof(marker),
                "{\"supervisor\":\"summary\",\"restarts\":%u,"
                "\"recoveries\":%u,\"mttr_ms\":%" PRIu64 "}\n",
                restarts, st.downtimeSamples,
                st.downtimeSamples != 0
                    ? st.downtimeSumMs / st.downtimeSamples
                    : 0);
            emitMarker(marker, static_cast<size_t>(n));
            return exitCode;
        }

        const char *reason = out.stalled ? "stall"
                             : exited    ? "exit"
                                         : "signal";
        const int detail = out.stalled ? 0
                           : exited    ? exitCode
                                       : WTERMSIG(out.status);
        st.downSinceMs = monotonicMs();

        if (requestedStop()) {
            // The operator is stopping the service; a child that
            // died on the way out is not worth restarting.
            const int n = std::snprintf(
                marker, sizeof(marker),
                "{\"supervisor\":\"summary\",\"restarts\":%u,"
                "\"recoveries\":%u,\"mttr_ms\":%" PRIu64 "}\n",
                restarts, st.downtimeSamples,
                st.downtimeSamples != 0
                    ? st.downtimeSumMs / st.downtimeSamples
                    : 0);
            emitMarker(marker, static_cast<size_t>(n));
            return 130;
        }
        if (exited && exitCode == 127) {
            // exec itself failed; restarting cannot help.
            std::fprintf(stderr,
                         "metro_sim: supervisor: child exec failed; "
                         "not restarting\n");
            return 1;
        }
        if (restarts >= config.restartBudget) {
            const int n = std::snprintf(
                marker, sizeof(marker),
                "{\"supervisor\":\"giveup\",\"restarts\":%u,"
                "\"reason\":\"%s\",\"detail\":%d}\n",
                restarts, reason, detail);
            emitMarker(marker, static_cast<size_t>(n));
            std::fprintf(stderr,
                         "metro_sim: supervisor: restart budget (%u) "
                         "exhausted\n",
                         config.restartBudget);
            return 1;
        }

        restarts += 1;
        const unsigned shift = restarts - 1 < 20 ? restarts - 1 : 20;
        std::uint64_t backoff = config.backoffBaseMs << shift;
        if (backoff > config.backoffCapMs || backoff < config.backoffBaseMs)
            backoff = config.backoffCapMs;
        const int n = std::snprintf(
            marker, sizeof(marker),
            "{\"supervisor\":\"restart\",\"n\":%u,\"reason\":\"%s\","
            "\"detail\":%d,\"backoff_ms\":%" PRIu64
            ",\"next_window\":%" PRIu64 "}\n",
            restarts, reason, detail, backoff, st.nextSeq);
        emitMarker(marker, static_cast<size_t>(n));
        backoffSleep(backoff);
        if (requestedStop())
            return 130;
    }
}

} // namespace metro
