/**
 * @file
 * Async-signal-safe stop flag for SIGINT/SIGTERM.
 *
 * The serve loop (and the sweep scheduler) poll requestedStop()
 * between windows / sweep points; the CLI installs the handlers once
 * at startup. Everything the handler touches is a single
 * volatile sig_atomic_t, the only thing POSIX lets a handler write.
 */

#ifndef METRO_SERVE_SIGNAL_HH
#define METRO_SERVE_SIGNAL_HH

namespace metro
{

/** Install SIGINT/SIGTERM handlers that latch the stop flag.
 *  Idempotent; safe to call more than once. */
void installStopHandlers();

/** True once SIGINT or SIGTERM has been received (or requestStop()
 *  called). */
bool requestedStop();

/** Latch the stop flag programmatically (tests, embedders). */
void requestStop();

/** Clear the flag (tests only; real runs exit after stopping). */
void clearStopFlag();

} // namespace metro

#endif // METRO_SERVE_SIGNAL_HH
