/**
 * @file
 * Async-signal-safe stop flag for SIGINT/SIGTERM.
 *
 * The serve loop (and the sweep scheduler) poll requestedStop()
 * between windows / sweep points; the CLI installs the handlers once
 * at startup. Everything the handlers touch is volatile
 * sig_atomic_t, the only thing POSIX lets a handler write.
 *
 * The first SIGINT/SIGTERM latches the flag for a graceful stop
 * (finish the window, write the final checkpoint). A SECOND one
 * _exit(130)s immediately — a hung drain must not make the process
 * unkillable from the keyboard. SIGPIPE is ignored so supervised
 * children see write errors, not kills, when the supervisor dies.
 */

#ifndef METRO_SERVE_SIGNAL_HH
#define METRO_SERVE_SIGNAL_HH

namespace metro
{

/** Install the handlers above via sigaction. Idempotent; safe to
 *  call more than once. */
void installStopHandlers();

/** True once SIGINT or SIGTERM has been received (or requestStop()
 *  called). */
bool requestedStop();

/** Latch the stop flag programmatically (tests, embedders). */
void requestStop();

/** Clear the flag (tests only; real runs exit after stopping). */
void clearStopFlag();

} // namespace metro

#endif // METRO_SERVE_SIGNAL_HH
