#include "serve/signal.hh"

#include <csignal>

namespace metro
{

namespace
{

volatile std::sig_atomic_t g_stop = 0;

extern "C" void
stopHandler(int)
{
    g_stop = 1;
}

} // namespace

void
installStopHandlers()
{
    std::signal(SIGINT, stopHandler);
    std::signal(SIGTERM, stopHandler);
}

bool
requestedStop()
{
    return g_stop != 0;
}

void
requestStop()
{
    g_stop = 1;
}

void
clearStopFlag()
{
    g_stop = 0;
}

} // namespace metro
