#include "serve/signal.hh"

#include <csignal>

#include <unistd.h>

namespace metro
{

namespace
{

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_signals = 0;

extern "C" void
stopHandler(int)
{
    g_stop = 1;
    // A second SIGINT/SIGTERM means "now": the graceful path
    // latched the flag already, and if the drain (or anything
    // else) is hung, the operator must still be able to kill the
    // process from the keyboard. _exit is async-signal-safe.
    if (++g_signals >= 2)
        ::_exit(130);
}

} // namespace

void
installStopHandlers()
{
    // sigaction, not std::signal: defined semantics on every POSIX
    // host (no SysV reset-to-default race losing the second
    // signal), an explicit mask, and no SA_RESTART — a stop signal
    // should interrupt blocking reads, not resume them.
    struct sigaction sa = {};
    sa.sa_handler = stopHandler;
    sigemptyset(&sa.sa_mask);
    // Block the sibling signal while handling one: the two share
    // g_signals.
    sigaddset(&sa.sa_mask, SIGINT);
    sigaddset(&sa.sa_mask, SIGTERM);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    // Serve children write heartbeats and window records into
    // supervisor pipes; a dead supervisor must surface as a write
    // error, not a SIGPIPE kill.
    struct sigaction ign = {};
    ign.sa_handler = SIG_IGN;
    sigemptyset(&ign.sa_mask);
    sigaction(SIGPIPE, &ign, nullptr);
}

bool
requestedStop()
{
    return g_stop != 0;
}

void
requestStop()
{
    g_stop = 1;
}

void
clearStopFlag()
{
    g_stop = 0;
    g_signals = 0;
}

} // namespace metro
