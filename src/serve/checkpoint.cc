#include "serve/checkpoint.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "diag/engine.hh"
#include "endpoint/interface.hh"
#include "endpoint/message.hh"
#include "fault/campaign.hh"
#include "fault/injector.hh"
#include "network/network.hh"
#include "obs/registry.hh"
#include "router/router.hh"
#include "serve/stateio.hh"
#include "sim/arena.hh"
#include "sim/engine.hh"
#include "sim/link.hh"
#include "traffic/drivers.hh"

namespace metro
{

namespace
{

constexpr std::uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(b))
            << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(c))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(d))
            << 24);
}

constexpr std::uint32_t kTagEngine = fourcc('E', 'N', 'G', 'I');
constexpr std::uint32_t kTagSched = fourcc('S', 'C', 'H', 'D');
constexpr std::uint32_t kTagArena = fourcc('A', 'R', 'E', 'N');
constexpr std::uint32_t kTagLinks = fourcc('L', 'I', 'N', 'K');
constexpr std::uint32_t kTagCascades = fourcc('C', 'A', 'S', 'C');
constexpr std::uint32_t kTagRouters = fourcc('R', 'O', 'U', 'T');
constexpr std::uint32_t kTagTracker = fourcc('T', 'R', 'A', 'K');
constexpr std::uint32_t kTagEndpoints = fourcc('E', 'N', 'D', 'P');
constexpr std::uint32_t kTagGate = fourcc('G', 'A', 'T', 'E');
constexpr std::uint32_t kTagMetrics = fourcc('M', 'E', 'T', 'R');
constexpr std::uint32_t kTagClosed = fourcc('D', 'R', 'V', 'C');
constexpr std::uint32_t kTagOpen = fourcc('D', 'R', 'V', 'O');
constexpr std::uint32_t kTagInjector = fourcc('I', 'N', 'J', 'E');
constexpr std::uint32_t kTagCampaign = fourcc('C', 'A', 'M', 'P');
constexpr std::uint32_t kTagDiag = fourcc('D', 'I', 'A', 'G');
constexpr std::uint32_t kTagHarness = fourcc('H', 'A', 'R', 'N');
constexpr std::uint32_t kTagDone = fourcc('D', 'O', 'N', 'E');

void
expectTag(StateReader &r, std::uint32_t tag, const char *name)
{
    if (r.ok() && r.u32() != tag)
        r.fail(std::string("section tag mismatch: expected ") + name);
}

void
putRng(StateWriter &w, const Xoshiro256 &rng)
{
    std::uint64_t s[4];
    rng.stateWords(s);
    for (std::uint64_t v : s)
        w.u64(v);
}

void
getRng(StateReader &r, Xoshiro256 &rng)
{
    std::uint64_t s[4];
    for (auto &v : s)
        v = r.u64();
    if (r.ok())
        rng.setStateWords(s);
}

void
putSymbol(StateWriter &w, const Symbol &s)
{
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.u64(s.value);
    w.u64(s.route);
    w.u16(s.routeLen);
    w.u16(s.routePos);
    w.u64(s.msgId);
}

void
getSymbol(StateReader &r, Symbol &s)
{
    const std::uint8_t kind = r.u8();
    s.value = r.u64();
    s.route = r.u64();
    s.routeLen = r.u16();
    s.routePos = r.u16();
    s.msgId = r.u64();
    if (!r.ok())
        return;
    if (kind > static_cast<std::uint8_t>(SymbolKind::Test)) {
        r.fail("invalid symbol kind");
        return;
    }
    // Route cursors feed shifts of a 64-bit word downstream.
    if (s.routeLen > 64 || s.routePos > 64) {
        r.fail("route cursor out of range");
        return;
    }
    s.kind = static_cast<SymbolKind>(kind);
}

void
putStatus(StateWriter &w, const StatusWord &s)
{
    w.u32(s.router);
    w.u8(s.stage);
    w.u8(s.blocked ? 1 : 0);
    w.u16(s.checksum);
    w.u32(s.port);
}

void
getStatus(StateReader &r, StatusWord &s)
{
    s.router = r.u32();
    s.stage = r.u8();
    s.blocked = r.u8() != 0;
    s.checksum = r.u16();
    s.port = r.u32();
}

void
putWords(StateWriter &w, const std::vector<Word> &v)
{
    w.u64(v.size());
    for (Word x : v)
        w.u64(x);
}

void
getWords(StateReader &r, std::vector<Word> &v)
{
    const std::uint64_t n = r.count(8);
    v.clear();
    if (!r.ok())
        return;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(r.u64());
}

void
putBools(StateWriter &w, const std::vector<bool> &v)
{
    w.u64(v.size());
    for (bool b : v)
        w.u8(b ? 1 : 0);
}

/** Read a bool vector that must be exactly `expect` long (the
 *  fresh instance fixes the geometry). */
void
getBools(StateReader &r, std::vector<bool> &v, std::size_t expect)
{
    const std::uint64_t n = r.count(1);
    if (!r.ok())
        return;
    if (n != expect) {
        r.fail("flag vector size mismatch");
        return;
    }
    v.assign(n, false);
    for (std::uint64_t i = 0; i < n; ++i)
        v[i] = r.u8() != 0;
}

void
putCounterSet(StateWriter &w, const CounterSet &c)
{
    const auto entries = c.all();
    w.u64(entries.size());
    for (const auto &[name, value] : entries) {
        w.str(name);
        w.u64(value);
    }
}

void
getCounterSet(StateReader &r, CounterSet &c)
{
    const std::uint64_t n = r.count(16);
    if (!r.ok())
        return;
    c.reset();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::string name = r.str();
        const std::uint64_t value = r.u64();
        if (!r.ok())
            return;
        c.slot(name) = value;
    }
}

} // namespace

/**
 * The one class every stateful component befriends. All private
 * field access during save/restore funnels through here; the
 * public entry points below are thin wrappers.
 */
class CheckpointIO
{
  public:
    static void save(StateWriter &w, std::uint64_t digest,
                     const CheckpointParticipants &parts,
                     const std::vector<std::uint8_t> &harness);
    static std::string restore(StateReader &r, std::uint64_t digest,
                               const CheckpointParticipants &parts,
                               std::vector<std::uint8_t> *harness);

  private:
    static void putHistogram(StateWriter &w, const LogHistogram &h);
    static void getHistogram(StateReader &r, LogHistogram &h);

    static void saveArena(StateWriter &w, const LaneArena &a);
    static void restoreArena(StateReader &r, LaneArena &a);

    static void saveRouter(StateWriter &w, const MetroRouter &rt);
    static void restoreRouter(StateReader &r, MetroRouter &rt);

    static void saveEndpoint(StateWriter &w,
                             const NetworkInterface &ni);
    static void restoreEndpoint(StateReader &r, NetworkInterface &ni,
                                const MessageTracker &tracker);

    static void saveTracker(StateWriter &w, const MessageTracker &t);
    static void restoreTracker(StateReader &r, MessageTracker &t);

    static void saveRegistry(StateWriter &w,
                             const MetricsRegistry &m);
    static void restoreRegistry(StateReader &r, MetricsRegistry &m);

    static void saveDiag(StateWriter &w, const DiagnosisEngine &d);
    static void restoreDiag(StateReader &r, DiagnosisEngine &d);
};

void
CheckpointIO::putHistogram(StateWriter &w, const LogHistogram &h)
{
    for (unsigned k = 0; k < LogHistogram::kBuckets; ++k)
        w.u64(h.buckets_[k]);
    w.u64(h.count_);
    w.u64(h.sum_);
}

void
CheckpointIO::getHistogram(StateReader &r, LogHistogram &h)
{
    std::uint64_t buckets[LogHistogram::kBuckets];
    for (auto &b : buckets)
        b = r.u64();
    const std::uint64_t count = r.u64();
    const std::uint64_t sum = r.u64();
    if (!r.ok())
        return;
    for (unsigned k = 0; k < LogHistogram::kBuckets; ++k)
        h.buckets_[k] = buckets[k];
    h.count_ = count;
    h.sum_ = sum;
}

void
CheckpointIO::saveArena(StateWriter &w, const LaneArena &a)
{
    w.u64(a.base_.size());
    w.u64(a.slots_.size());
    for (const Symbol &s : a.slots_)
        putSymbol(w, s);
    for (std::uint32_t h : a.head_)
        w.u32(h);
    for (std::uint32_t o : a.occupied_)
        w.u32(o);
    for (const Symbol &s : a.pending_)
        putSymbol(w, s);
    for (std::uint8_t p : a.pushed_)
        w.u8(p);
    for (std::uint8_t f : a.flags_)
        w.u8(f);
}

void
CheckpointIO::restoreArena(StateReader &r, LaneArena &a)
{
    const std::uint64_t lanes = r.u64();
    const std::uint64_t slots = r.u64();
    if (!r.ok())
        return;
    if (lanes != a.base_.size() || slots != a.slots_.size()) {
        r.fail("arena geometry mismatch");
        return;
    }
    for (Symbol &s : a.slots_)
        getSymbol(r, s);
    for (std::uint64_t i = 0; i < lanes && r.ok(); ++i) {
        const std::uint32_t h = r.u32();
        if (!r.ok())
            break;
        // The head cursor indexes the flat slot array; keep it
        // inside this lane's ring or the advance pass reads out of
        // bounds.
        if (h < a.base_[i] || h >= a.end_[i]) {
            r.fail("lane head cursor out of range");
            break;
        }
        a.head_[i] = h;
    }
    for (std::uint64_t i = 0; i < lanes && r.ok(); ++i)
        a.occupied_[i] = r.u32();
    for (Symbol &s : a.pending_) {
        if (!r.ok())
            break;
        getSymbol(r, s);
    }
    for (std::uint64_t i = 0; i < lanes && r.ok(); ++i)
        a.pushed_[i] = r.u8() != 0 ? 1 : 0;
    for (std::uint64_t i = 0; i < lanes && r.ok(); ++i) {
        const std::uint8_t f = r.u8();
        if (!r.ok())
            break;
        if ((f & ~(LaneArena::kLanePaused | LaneArena::kLaneFrozen |
                   LaneArena::kCensusMask)) != 0) {
            r.fail("unknown lane flag bits");
            break;
        }
        a.flags_[i] = f;
    }
    if (!r.ok())
        return;
    // Derived: the sleeping-lane tally the fastpath accounting and
    // chunked-advance threshold read.
    a.sleepingLanes_ = 0;
    for (std::uint8_t f : a.flags_) {
        if ((f & LaneArena::kLanePaused) != 0 &&
            (f & LaneArena::kLaneFrozen) == 0)
            ++a.sleepingLanes_;
    }
}

void
CheckpointIO::saveRouter(StateWriter &w, const MetroRouter &rt)
{
    // TAP-writable configuration (drain/maintenance and diagnosis
    // masks land here), then fault state, then the per-port SoA
    // connection state.
    w.u32(rt.config_.dilation);
    w.u32(rt.config_.backwardPortsUsed);
    putBools(w, rt.config_.forwardEnabled);
    putBools(w, rt.config_.backwardEnabled);
    putBools(w, rt.config_.offPortDrive);
    putBools(w, rt.config_.fastReclaim);
    putBools(w, rt.config_.swallow);
    w.u64(rt.config_.turnDelay.size());
    for (unsigned t : rt.config_.turnDelay)
        w.u32(t);
    w.u8(rt.config_.randomSelection ? 1 : 0);
    w.u32(rt.config_.idleTimeout);

    w.u8(rt.dead_ ? 1 : 0);
    w.u8(rt.misroute_ ? 1 : 0);
    putRng(w, rt.misrouteRng_);

    const std::size_t nF = rt.fState_.size();
    const std::size_t nB = rt.bBusy_.size();
    w.u64(nF);
    w.u64(nB);
    for (std::size_t p = 0; p < nF; ++p) {
        w.u8(static_cast<std::uint8_t>(rt.fState_[p]));
        w.u32(rt.fBwd_[p]);
        w.u32(rt.fConsumeLeft_[p]);
        w.u16(rt.fPosAfter_[p]);
        w.u8(rt.fSwallowFirst_[p]);
        w.u8(rt.fFirstHeaderDone_[p]);
        w.u16(rt.fCrc_[p].value());
        w.u32(rt.fDirection_[p]);
        w.u64(rt.fLastActivity_[p]);
        w.u64(rt.fMsgId_[p]);
        putSymbol(w, rt.fLastTest_[p]);
    }
    for (std::size_t b = 0; b < nB; ++b) {
        w.u8(rt.bBusy_[b]);
        w.u32(rt.bOwner_[b]);
        w.u8(rt.bRevRead_[b]);
    }
    w.u8(rt.offPortDriveArmed_ ? 1 : 0);
    putCounterSet(w, rt.counters_);
}

void
CheckpointIO::restoreRouter(StateReader &r, MetroRouter &rt)
{
    const std::size_t nFwd = rt.fState_.size();
    const std::size_t nBwd = rt.bBusy_.size();

    RouterConfig cfg;
    cfg.dilation = r.u32();
    cfg.backwardPortsUsed = r.u32();
    getBools(r, cfg.forwardEnabled, nFwd);
    getBools(r, cfg.backwardEnabled, nBwd);
    getBools(r, cfg.offPortDrive, nBwd);
    getBools(r, cfg.fastReclaim, nFwd);
    getBools(r, cfg.swallow, nFwd);
    const std::uint64_t nTurn = r.count(4);
    if (r.ok() && nTurn != rt.config_.turnDelay.size())
        r.fail("turn-delay vector size mismatch");
    if (!r.ok())
        return;
    cfg.turnDelay.resize(nTurn);
    for (auto &t : cfg.turnDelay)
        t = r.u32();
    cfg.randomSelection = r.u8() != 0;
    cfg.idleTimeout = r.u32();
    if (!r.ok())
        return;
    if (cfg.dilation == 0 || cfg.dilation > nBwd ||
        cfg.backwardPortsUsed > nBwd) {
        r.fail("router config out of range");
        return;
    }
    rt.config_ = std::move(cfg);

    rt.dead_ = r.u8() != 0;
    rt.misroute_ = r.u8() != 0;
    getRng(r, rt.misrouteRng_);

    const std::uint64_t nF = r.u64();
    const std::uint64_t nB = r.u64();
    if (!r.ok())
        return;
    if (nF != nFwd || nB != nBwd) {
        r.fail("router port count mismatch");
        return;
    }
    for (std::size_t p = 0; p < nFwd && r.ok(); ++p) {
        const std::uint8_t state = r.u8();
        const PortIndex bwd = r.u32();
        const std::uint32_t consume = r.u32();
        const std::uint16_t posAfter = r.u16();
        const std::uint8_t swallowFirst = r.u8();
        const std::uint8_t firstHeader = r.u8();
        const std::uint16_t crc = r.u16();
        const std::uint32_t direction = r.u32();
        const Cycle lastActivity = r.u64();
        const std::uint64_t msgId = r.u64();
        Symbol lastTest;
        getSymbol(r, lastTest);
        if (!r.ok())
            break;
        if (state > static_cast<std::uint8_t>(FwdPortState::Draining)) {
            r.fail("invalid forward-port state");
            break;
        }
        if (bwd != kInvalidPort && bwd >= nBwd) {
            r.fail("forward port's backward index out of range");
            break;
        }
        if (posAfter > 64) {
            r.fail("forward port route cursor out of range");
            break;
        }
        rt.fState_[p] = static_cast<FwdPortState>(state);
        rt.fBwd_[p] = bwd;
        rt.fConsumeLeft_[p] = consume;
        rt.fPosAfter_[p] = posAfter;
        rt.fSwallowFirst_[p] = swallowFirst != 0 ? 1 : 0;
        rt.fFirstHeaderDone_[p] = firstHeader != 0 ? 1 : 0;
        rt.fCrc_[p].setValue(crc);
        rt.fDirection_[p] = direction;
        rt.fLastActivity_[p] = lastActivity;
        rt.fMsgId_[p] = msgId;
        rt.fLastTest_[p] = lastTest;
    }
    for (std::size_t b = 0; b < nBwd && r.ok(); ++b) {
        const std::uint8_t busy = r.u8();
        const PortIndex owner = r.u32();
        const std::uint8_t revRead = r.u8();
        if (!r.ok())
            break;
        if (owner != kInvalidPort && owner >= nFwd) {
            r.fail("backward port's owner index out of range");
            break;
        }
        rt.bBusy_[b] = busy != 0 ? 1 : 0;
        rt.bOwner_[b] = owner;
        rt.bRevRead_[b] = revRead != 0 ? 1 : 0;
    }
    rt.offPortDriveArmed_ = r.u8() != 0;
    getCounterSet(r, rt.counters_);
    if (!r.ok())
        return;
    // Derived per-tick state: the availability snapshot must be
    // refilled from the restored config/busy flags, and stale grant
    // records from the pre-restore instance dropped.
    rt.availDirty_ = true;
    rt.lastGrants_.clear();
}

void
CheckpointIO::saveEndpoint(StateWriter &w, const NetworkInterface &ni)
{
    putRng(w, ni.rng_);
    w.u64(ni.policy_ != nullptr ? ni.policy_->checkpointState() : 0);
    w.f64(ni.budget_.tokens_);

    w.u64(ni.queue_.size());
    for (std::uint64_t id : ni.queue_)
        w.u64(id);
    w.u8(static_cast<std::uint8_t>(ni.sendState_));
    w.u64(ni.activeMsg_);
    w.u32(ni.outPort_);
    w.u64(ni.stream_.size());
    for (const Symbol &s : ni.stream_)
        putSymbol(w, s);
    w.u64(ni.cursor_);
    w.u64(ni.turnSent_);
    w.u64(ni.backoffUntil_);
    w.u64(ni.prevBackoff_);
    w.u64(ni.lastCycle_);
    w.u8(ni.gateHeld_ ? 1 : 0);
    w.u64(ni.statuses_.size());
    for (const StatusWord &s : ni.statuses_)
        putStatus(w, s);
    w.u8(ni.sawBlockedStatus_ ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(ni.abortCause_));
    w.u64(ni.sentChecksum_);
    w.u8(ni.ackSeen_ ? 1 : 0);
    w.u64(ni.ack_.encode());
    putWords(w, ni.replyWords_);
    w.u64(ni.replySliceCrc_.size());
    for (const Crc16 &c : ni.replySliceCrc_)
        w.u16(c.value());
    w.u8(ni.replyChecksumSeen_ ? 1 : 0);
    w.u64(ni.replyChecksum_);
    w.u32(ni.nextSequence_);
    w.u32(ni.roundIndex_);
    w.u32(ni.roundsAckedOk_);
    w.u64(ni.sessionReplies_.size());
    for (const auto &round : ni.sessionReplies_)
        putWords(w, round);
    w.u64(ni.attemptStart_);
    w.u64(static_cast<std::uint64_t>(ni.protocolRead_));

    putBools(w, ni.outPortEnabled_);

    // unordered_map: emit sorted so the byte stream is stable.
    {
        std::vector<std::pair<NodeId, std::uint32_t>> seqs(
            ni.lastDeliveredSeq_.begin(), ni.lastDeliveredSeq_.end());
        std::sort(seqs.begin(), seqs.end());
        w.u64(seqs.size());
        for (const auto &[node, seq] : seqs) {
            w.u32(node);
            w.u32(seq);
        }
    }

    w.u64(ni.in_.size());
    for (const auto &port : ni.in_) {
        w.u8(static_cast<std::uint8_t>(port.state));
        w.u64(port.msgId);
        w.u64(port.sliceCrc.size());
        for (const Crc16 &c : port.sliceCrc)
            w.u16(c.value());
        putWords(w, port.words);
        w.u8(port.checksumSeen ? 1 : 0);
        w.u64(port.checksum);
        w.u64(port.replyQueue.size());
        for (const Symbol &s : port.replyQueue)
            putSymbol(w, s);
        w.u64(port.lastActivity);
        w.u32(port.round);
    }

    putCounterSet(w, ni.counters_);
}

void
CheckpointIO::restoreEndpoint(StateReader &r, NetworkInterface &ni,
                              const MessageTracker &tracker)
{
    getRng(r, ni.rng_);
    const std::uint64_t policyState = r.u64();
    if (r.ok() && ni.policy_ != nullptr)
        ni.policy_->restoreCheckpointState(policyState);
    ni.budget_.tokens_ = r.f64();

    const std::uint64_t nQueue = r.count(8);
    if (!r.ok())
        return;
    ni.queue_.clear();
    for (std::uint64_t i = 0; i < nQueue; ++i) {
        const std::uint64_t id = r.u64();
        if (!r.ok())
            return;
        if (!tracker.known(id)) {
            r.fail("queued message id unknown to the ledger");
            return;
        }
        ni.queue_.push_back(id);
    }
    const std::uint8_t sendState = r.u8();
    if (r.ok() &&
        sendState >
            static_cast<std::uint8_t>(
                NetworkInterface::SendState::Backoff)) {
        r.fail("invalid endpoint send state");
        return;
    }
    ni.sendState_ = static_cast<NetworkInterface::SendState>(sendState);
    const std::uint64_t activeMsg = r.u64();
    if (r.ok() && activeMsg != 0 && !tracker.known(activeMsg)) {
        r.fail("active message id unknown to the ledger");
        return;
    }
    ni.activeMsg_ = activeMsg;
    const std::uint32_t outPort = r.u32();
    if (r.ok() && !ni.out_.empty() && outPort >= ni.out_.size()) {
        r.fail("endpoint out-port index out of range");
        return;
    }
    ni.outPort_ = outPort;
    const std::uint64_t nStream = r.count(1);
    if (!r.ok())
        return;
    ni.stream_.assign(nStream, Symbol{});
    for (Symbol &s : ni.stream_)
        getSymbol(r, s);
    const std::uint64_t cursor = r.u64();
    if (r.ok() && cursor > ni.stream_.size()) {
        r.fail("stream cursor out of range");
        return;
    }
    ni.cursor_ = cursor;
    ni.turnSent_ = r.u64();
    ni.backoffUntil_ = r.u64();
    ni.prevBackoff_ = r.u64();
    ni.lastCycle_ = r.u64();
    ni.gateHeld_ = r.u8() != 0;
    const std::uint64_t nStatus = r.count(12);
    if (!r.ok())
        return;
    ni.statuses_.assign(nStatus, StatusWord{});
    for (StatusWord &s : ni.statuses_)
        getStatus(r, s);
    ni.sawBlockedStatus_ = r.u8() != 0;
    const std::uint8_t abortCause = r.u8();
    if (r.ok() &&
        abortCause >
            static_cast<std::uint8_t>(AttemptOutcome::RoundFail)) {
        r.fail("invalid attempt outcome");
        return;
    }
    ni.abortCause_ = static_cast<AttemptOutcome>(abortCause);
    ni.sentChecksum_ = r.u64();
    ni.ackSeen_ = r.u8() != 0;
    ni.ack_ = AckWord::decode(r.u64());
    getWords(r, ni.replyWords_);
    // Slice-CRC vectors are empty until a message is in flight,
    // then hold one entry per cascade slice: the count is state,
    // not structure, so resize to the saved value (bounded).
    const std::uint64_t nCrc = r.count(2);
    if (!r.ok())
        return;
    if (nCrc != 0 && nCrc != ni.cascade_) {
        r.fail("reply slice-CRC count mismatch");
        return;
    }
    ni.replySliceCrc_.assign(nCrc, Crc16{});
    for (Crc16 &c : ni.replySliceCrc_)
        c.setValue(r.u16());
    ni.replyChecksumSeen_ = r.u8() != 0;
    ni.replyChecksum_ = r.u64();
    ni.nextSequence_ = r.u32();
    ni.roundIndex_ = r.u32();
    ni.roundsAckedOk_ = r.u32();
    const std::uint64_t nRounds = r.count(8);
    if (!r.ok())
        return;
    ni.sessionReplies_.assign(nRounds, {});
    for (auto &round : ni.sessionReplies_)
        getWords(r, round);
    ni.attemptStart_ = r.u64();
    ni.protocolRead_ = static_cast<std::size_t>(r.u64());

    getBools(r, ni.outPortEnabled_, ni.outPortEnabled_.size());

    const std::uint64_t nSeqs = r.count(8);
    if (!r.ok())
        return;
    ni.lastDeliveredSeq_.clear();
    for (std::uint64_t i = 0; i < nSeqs; ++i) {
        const NodeId node = r.u32();
        const std::uint32_t seq = r.u32();
        if (!r.ok())
            return;
        ni.lastDeliveredSeq_[node] = seq;
    }

    const std::uint64_t nIn = r.count(1);
    if (!r.ok())
        return;
    if (nIn != ni.in_.size()) {
        r.fail("endpoint receive-port count mismatch");
        return;
    }
    for (auto &port : ni.in_) {
        const std::uint8_t state = r.u8();
        if (r.ok() &&
            state > static_cast<std::uint8_t>(
                        NetworkInterface::RecvState::Replying)) {
            r.fail("invalid endpoint receive state");
            return;
        }
        port.state = static_cast<NetworkInterface::RecvState>(state);
        port.msgId = r.u64();
        const std::uint64_t nSlice = r.count(2);
        if (!r.ok())
            return;
        if (nSlice != 0 && nSlice != ni.cascade_) {
            r.fail("receive slice-CRC count mismatch");
            return;
        }
        port.sliceCrc.assign(nSlice, Crc16{});
        for (Crc16 &c : port.sliceCrc)
            c.setValue(r.u16());
        getWords(r, port.words);
        port.checksumSeen = r.u8() != 0;
        port.checksum = r.u64();
        const std::uint64_t nReply = r.count(1);
        if (!r.ok())
            return;
        port.replyQueue.clear();
        for (std::uint64_t i = 0; i < nReply; ++i) {
            Symbol s;
            getSymbol(r, s);
            if (!r.ok())
                return;
            port.replyQueue.push_back(s);
        }
        port.lastActivity = r.u64();
        port.round = r.u32();
        if (!r.ok())
            return;
    }

    getCounterSet(r, ni.counters_);
}

void
CheckpointIO::saveTracker(StateWriter &w, const MessageTracker &t)
{
    w.u64(t.nextId_);
    // unordered_map: emit in id order for a stable byte stream.
    std::vector<const MessageRecord *> recs;
    recs.reserve(t.records_.size());
    for (const auto &[id, rec] : t.records_)
        recs.push_back(&rec);
    std::sort(recs.begin(), recs.end(),
              [](const MessageRecord *a, const MessageRecord *b) {
                  return a->id < b->id;
              });
    w.u64(recs.size());
    for (const MessageRecord *rec : recs) {
        w.u64(rec->id);
        w.u32(rec->src);
        w.u32(rec->dest);
        w.u32(rec->sequence);
        putWords(w, rec->payload);
        w.u8(rec->requestReply ? 1 : 0);
        w.u64(rec->submitCycle);
        w.u64(rec->injectCycle);
        w.u64(rec->deliverCycle);
        w.u64(rec->ackCycle);
        w.u64(rec->completeCycle);
        w.u32(rec->attempts);
        w.u32(rec->deliveredCount);
        w.u32(rec->arrivalCount);
        w.u8(rec->succeeded ? 1 : 0);
        w.u8(rec->gaveUp ? 1 : 0);
        w.u8(rec->starved ? 1 : 0);
        w.u8(rec->shedAdmission ? 1 : 0);
        w.u64(rec->statuses.size());
        for (const StatusWord &s : rec->statuses)
            putStatus(w, s);
        putWords(w, rec->reply);
        w.u8(rec->replyOk ? 1 : 0);
        w.u64(rec->sessionRounds.size());
        for (const auto &round : rec->sessionRounds)
            putWords(w, round);
        w.u64(rec->sessionReplies.size());
        for (const auto &round : rec->sessionReplies)
            putWords(w, round);
        w.u32(rec->roundsCompleted);
        w.u8(rec->trafficClass);
        w.u64(rec->rpcGroup);
        w.u32(rec->rpcFanout);
    }
}

void
CheckpointIO::restoreTracker(StateReader &r, MessageTracker &t)
{
    const std::uint64_t nextId = r.u64();
    const std::uint64_t nRecs = r.count(64);
    if (!r.ok())
        return;
    t.nextId_ = nextId;
    t.records_.clear();
    for (std::uint64_t i = 0; i < nRecs; ++i) {
        MessageRecord rec;
        rec.id = r.u64();
        rec.src = r.u32();
        rec.dest = r.u32();
        rec.sequence = r.u32();
        getWords(r, rec.payload);
        rec.requestReply = r.u8() != 0;
        rec.submitCycle = r.u64();
        rec.injectCycle = r.u64();
        rec.deliverCycle = r.u64();
        rec.ackCycle = r.u64();
        rec.completeCycle = r.u64();
        rec.attempts = r.u32();
        rec.deliveredCount = r.u32();
        rec.arrivalCount = r.u32();
        rec.succeeded = r.u8() != 0;
        rec.gaveUp = r.u8() != 0;
        rec.starved = r.u8() != 0;
        rec.shedAdmission = r.u8() != 0;
        const std::uint64_t nStatus = r.count(12);
        if (!r.ok())
            return;
        rec.statuses.assign(nStatus, StatusWord{});
        for (StatusWord &s : rec.statuses)
            getStatus(r, s);
        getWords(r, rec.reply);
        rec.replyOk = r.u8() != 0;
        const std::uint64_t nRounds = r.count(8);
        if (!r.ok())
            return;
        rec.sessionRounds.assign(nRounds, {});
        for (auto &round : rec.sessionRounds)
            getWords(r, round);
        const std::uint64_t nReplies = r.count(8);
        if (!r.ok())
            return;
        rec.sessionReplies.assign(nReplies, {});
        for (auto &round : rec.sessionReplies)
            getWords(r, round);
        rec.roundsCompleted = r.u32();
        rec.trafficClass = r.u8();
        rec.rpcGroup = r.u64();
        rec.rpcFanout = static_cast<std::uint16_t>(r.u32());
        if (!r.ok())
            return;
        const std::uint64_t id = rec.id;
        if (id == 0 || id >= nextId ||
            t.records_.count(id) != 0) {
            r.fail("ledger record id invalid or duplicated");
            return;
        }
        t.records_.emplace(id, std::move(rec));
    }
}

void
CheckpointIO::saveRegistry(StateWriter &w, const MetricsRegistry &m)
{
    w.u64(m.counters().size());
    for (const auto &[name, value] : m.counters()) {
        w.str(name);
        w.u64(value);
    }
    w.u64(m.histograms().size());
    for (const auto &[name, hist] : m.histograms()) {
        w.str(name);
        putHistogram(w, hist);
    }
}

void
CheckpointIO::restoreRegistry(StateReader &r, MetricsRegistry &m)
{
    // Overwrite every saved slot; zero live slots the checkpoint
    // does not name (the saver never shrinks its registry, so any
    // extra live slot is pre-restore noise). Never clear() — live
    // components hold interned pointers into these map nodes.
    const std::uint64_t nCounters = r.count(16);
    if (!r.ok())
        return;
    std::map<std::string, std::uint64_t> counters;
    for (std::uint64_t i = 0; i < nCounters; ++i) {
        const std::string name = r.str();
        const std::uint64_t value = r.u64();
        if (!r.ok())
            return;
        counters[name] = value;
    }
    const std::uint64_t nHists = r.count(16);
    if (!r.ok())
        return;
    std::map<std::string, LogHistogram> hists;
    for (std::uint64_t i = 0; i < nHists; ++i) {
        const std::string name = r.str();
        LogHistogram h;
        getHistogram(r, h);
        if (!r.ok())
            return;
        hists.emplace(name, h);
    }
    for (const auto &[name, value] : m.counters()) {
        if (counters.find(name) == counters.end())
            m.counter(name) = 0;
        (void)value;
    }
    for (const auto &[name, value] : counters)
        m.counter(name) = value;
    for (const auto &[name, hist] : m.histograms()) {
        if (hists.find(name) == hists.end())
            m.histogram(name).reset();
        (void)hist;
    }
    for (const auto &[name, hist] : hists)
        m.histogram(name) = hist;
}

void
CheckpointIO::saveDiag(StateWriter &w, const DiagnosisEngine &d)
{
    w.u64(d.scores_.size());
    for (const auto &[key, score] : d.scores_) {
        w.u64(key);
        w.u64(score.bad);
        w.u64(score.good);
        w.u64(score.firstBad);
    }
    w.u64(d.masked_.size());
    for (const auto &[key, mask] : d.masked_) {
        w.u64(key);
        w.u8(static_cast<std::uint8_t>(mask.kind));
        w.u32(mask.id);
        w.u32(mask.port);
        w.u64(mask.nextAction);
        w.u64(mask.pattern);
        w.u8(mask.verifying ? 1 : 0);
        w.u8(mask.awaitingProbe ? 1 : 0);
    }
    w.u64(d.probeNonce_);
    w.u64(d.diary_.attemptsSeen_);
    w.u64(d.diary_.pending_.size());
    for (const SuspectReport &rep : d.diary_.pending_) {
        w.u8(static_cast<std::uint8_t>(rep.kind));
        w.u32(rep.id);
        w.u32(rep.port);
        w.u8(rep.stage);
        w.u8(rep.exonerate ? 1 : 0);
        w.u8(rep.weight);
        w.u64(rep.cycle);
    }
}

void
CheckpointIO::restoreDiag(StateReader &r, DiagnosisEngine &d)
{
    const std::uint64_t nScores = r.count(32);
    if (!r.ok())
        return;
    d.scores_.clear();
    for (std::uint64_t i = 0; i < nScores; ++i) {
        const std::uint64_t key = r.u64();
        DiagnosisEngine::Score s;
        s.bad = r.u64();
        s.good = r.u64();
        s.firstBad = r.u64();
        if (!r.ok())
            return;
        d.scores_[key] = s;
    }
    const std::uint64_t nMasks = r.count(26);
    if (!r.ok())
        return;
    d.masked_.clear();
    for (std::uint64_t i = 0; i < nMasks; ++i) {
        const std::uint64_t key = r.u64();
        const std::uint8_t kind = r.u8();
        const std::uint32_t id = r.u32();
        const PortIndex port = r.u32();
        const Cycle nextAction = r.u64();
        const Word pattern = r.u64();
        const bool verifying = r.u8() != 0;
        const bool awaitingProbe = r.u8() != 0;
        if (!r.ok())
            return;
        if (kind >
            static_cast<std::uint8_t>(SuspectKind::RouterOutput)) {
            r.fail("invalid suspect kind");
            return;
        }
        // The wire resolution is structural: re-derive it from the
        // freshly built topology map instead of trusting the file.
        const auto wireIt = d.wires_.find(key);
        if (wireIt == d.wires_.end()) {
            r.fail("masked wire unknown to this topology");
            return;
        }
        DiagnosisEngine::Mask m;
        m.kind = static_cast<SuspectKind>(kind);
        m.id = id;
        m.port = port;
        m.wire = wireIt->second;
        m.nextAction = nextAction;
        m.pattern = pattern;
        m.verifying = verifying;
        m.awaitingProbe = awaitingProbe;
        d.masked_.emplace(key, m);
    }
    d.probeNonce_ = r.u64();
    d.diary_.attemptsSeen_ = r.u64();
    const std::uint64_t nPending = r.count(20);
    if (!r.ok())
        return;
    d.diary_.pending_.clear();
    for (std::uint64_t i = 0; i < nPending; ++i) {
        SuspectReport rep;
        const std::uint8_t kind = r.u8();
        rep.id = r.u32();
        rep.port = r.u32();
        rep.stage = r.u8();
        rep.exonerate = r.u8() != 0;
        rep.weight = r.u8();
        rep.cycle = r.u64();
        if (!r.ok())
            return;
        if (kind >
            static_cast<std::uint8_t>(SuspectKind::RouterOutput)) {
            r.fail("invalid pending suspect kind");
            return;
        }
        rep.kind = static_cast<SuspectKind>(kind);
        d.diary_.pending_.push_back(rep);
    }
}

void
CheckpointIO::save(StateWriter &w, std::uint64_t digest,
                   const CheckpointParticipants &parts,
                   const std::vector<std::uint8_t> &harness)
{
    Network &net = *parts.net;
    Engine &eng = net.engine_;
    // Flush concurrent metric scratch and catch up sleepers' metric
    // samples: after this, every counter and histogram holds the
    // same value the uninterrupted run's window snapshot sees, and
    // no per-tick scratch is live.
    eng.syncStats();

    w.u32(kCheckpointMagic);
    w.u32(kCheckpointVersion);
    w.u64(digest);
    w.u64(eng.now_);

    w.u32(kTagEngine);
    w.u64(eng.ticksSkipped_);
    w.u64(eng.linksFastpathed_);

    w.u32(kTagSched);
    w.u64(eng.components_.size());
    for (const Component *c : eng.components_) {
        w.u8(c->schedAsleep_ ? 1 : 0);
        w.u64(c->wakeAt_);
        w.u64(c->sleptFrom_);
    }

    w.u32(kTagArena);
    saveArena(w, net.arena_);

    w.u32(kTagLinks);
    w.u64(net.links_.size());
    for (const auto &l : net.links_) {
        w.u8(static_cast<std::uint8_t>(l->fault_));
        w.u8(l->active_ ? 1 : 0);
        putRng(w, l->faultRng_);
    }

    w.u32(kTagCascades);
    w.u64(net.cascades_.size());
    for (const auto &c : net.cascades_)
        w.u64(c->containments_);

    w.u32(kTagRouters);
    w.u64(net.routers_.size());
    for (const auto &rt : net.routers_)
        saveRouter(w, *rt);

    w.u32(kTagTracker);
    saveTracker(w, net.tracker_);

    w.u32(kTagEndpoints);
    w.u64(net.endpoints_.size());
    for (const auto &ni : net.endpoints_)
        saveEndpoint(w, *ni);

    w.u32(kTagGate);
    w.u8(net.inflightGate_ != nullptr ? 1 : 0);
    if (net.inflightGate_ != nullptr) {
        w.u32(net.inflightGate_->limit_);
        w.u32(net.inflightGate_->active_);
    }

    w.u32(kTagMetrics);
    saveRegistry(w, net.metrics_);

    w.u32(kTagClosed);
    w.u64(parts.closedDrivers.size());
    for (const ClosedLoopDriver *d : parts.closedDrivers) {
        putRng(w, d->rng_);
        w.u64(d->nextSubmit_);
        w.u8(d->waiting_ ? 1 : 0);
        w.u64(d->submitted_);
        w.u64(d->ids_.size());
        for (std::uint64_t id : d->ids_)
            w.u64(id);
    }

    w.u32(kTagOpen);
    w.u64(parts.openDrivers.size());
    for (const OpenLoopDriver *d : parts.openDrivers) {
        putRng(w, d->rng_);
        w.u8(d->process_.phaseOn() ? 1 : 0);
        w.u64(d->submitted_);
        w.u64(d->ids_.size());
        for (std::uint64_t id : d->ids_)
            w.u64(id);
    }

    w.u32(kTagInjector);
    w.u8(parts.injector != nullptr ? 1 : 0);
    if (parts.injector != nullptr)
        w.u64(parts.injector->applied_);

    w.u32(kTagCampaign);
    w.u8(parts.campaign != nullptr ? 1 : 0);
    if (parts.campaign != nullptr) {
        FaultCampaign &camp = *parts.campaign;
        putRng(w, camp.rng_);
        w.u64(camp.downLinks_.size());
        for (LinkId l : camp.downLinks_)
            w.u32(l);
        w.u64(camp.deadRouters_.size());
        for (RouterId rid : camp.deadRouters_)
            w.u32(rid);
        w.u64(camp.flaky_.size());
        for (const auto &f : camp.flaky_) {
            w.u32(f.link);
            w.u64(f.nextToggle);
            w.u8(f.down ? 1 : 0);
        }
    }

    w.u32(kTagDiag);
    w.u8(parts.diagnosis != nullptr ? 1 : 0);
    if (parts.diagnosis != nullptr)
        saveDiag(w, *parts.diagnosis);

    w.u32(kTagHarness);
    w.blob(harness);

    w.u32(kTagDone);
}

std::string
CheckpointIO::restore(StateReader &r, std::uint64_t digest,
                      const CheckpointParticipants &parts,
                      std::vector<std::uint8_t> *harness)
{
    Network &net = *parts.net;
    Engine &eng = net.engine_;
    // Flush any pre-restore concurrent scratch into the registry
    // (which the checkpoint then overwrites wholesale): restoring
    // into an engine that already ran some cycles must not leave
    // stale per-component scratch to be flushed later.
    eng.syncStats();

    if (r.u32() != kCheckpointMagic)
        r.fail("bad checkpoint magic");
    if (r.ok() && r.u32() != kCheckpointVersion)
        r.fail("unsupported checkpoint version");
    if (r.ok() && r.u64() != digest)
        r.fail("config digest mismatch: this checkpoint was taken "
               "from a different configuration");
    const Cycle cycle = r.u64();

    expectTag(r, kTagEngine, "ENGI");
    const std::uint64_t ticksSkipped = r.u64();
    const std::uint64_t linksFastpathed = r.u64();

    expectTag(r, kTagSched, "SCHD");
    const std::uint64_t nComp = r.count(17);
    if (r.ok() && nComp != eng.components_.size())
        r.fail("engine component count mismatch (was the instance "
               "built with the same options?)");
    if (!r.ok())
        return r.error();
    for (Component *c : eng.components_) {
        c->schedAsleep_ = r.u8() != 0;
        c->wakeAt_ = r.u64();
        c->sleptFrom_ = r.u64();
        if (!r.ok())
            return r.error();
    }

    expectTag(r, kTagArena, "AREN");
    restoreArena(r, net.arena_);
    if (!r.ok())
        return r.error();

    expectTag(r, kTagLinks, "LINK");
    const std::uint64_t nLinks = r.count(34);
    if (r.ok() && nLinks != net.links_.size())
        r.fail("link count mismatch");
    if (!r.ok())
        return r.error();
    for (auto &l : net.links_) {
        const std::uint8_t fault = r.u8();
        const bool active = r.u8() != 0;
        getRng(r, l->faultRng_);
        if (!r.ok())
            return r.error();
        if (fault > static_cast<std::uint8_t>(LinkFault::Corrupt))
            return "invalid link fault state";
        // Direct writes, not setFault(): the side effects (census
        // seeding, reactivation) already happened before the save;
        // the arena flags carry the resulting state.
        l->fault_ = static_cast<LinkFault>(fault);
        l->active_ = active;
    }

    expectTag(r, kTagCascades, "CASC");
    const std::uint64_t nCasc = r.count(8);
    if (r.ok() && nCasc != net.cascades_.size())
        r.fail("cascade group count mismatch");
    if (!r.ok())
        return r.error();
    for (auto &c : net.cascades_)
        c->containments_ = r.u64();

    expectTag(r, kTagRouters, "ROUT");
    const std::uint64_t nRouters = r.count(32);
    if (r.ok() && nRouters != net.routers_.size())
        r.fail("router count mismatch");
    if (!r.ok())
        return r.error();
    for (auto &rt : net.routers_) {
        restoreRouter(r, *rt);
        if (!r.ok())
            return r.error();
    }

    expectTag(r, kTagTracker, "TRAK");
    restoreTracker(r, net.tracker_);
    if (!r.ok())
        return r.error();

    expectTag(r, kTagEndpoints, "ENDP");
    const std::uint64_t nEps = r.count(32);
    if (r.ok() && nEps != net.endpoints_.size())
        r.fail("endpoint count mismatch");
    if (!r.ok())
        return r.error();
    for (auto &ni : net.endpoints_) {
        restoreEndpoint(r, *ni, net.tracker_);
        if (!r.ok())
            return r.error();
    }

    expectTag(r, kTagGate, "GATE");
    const bool gatePresent = r.u8() != 0;
    if (r.ok() && gatePresent != (net.inflightGate_ != nullptr))
        r.fail("inflight-gate presence mismatch");
    if (!r.ok())
        return r.error();
    if (gatePresent) {
        const std::uint32_t limit = r.u32();
        const std::uint32_t active = r.u32();
        if (r.ok() && limit != net.inflightGate_->limit_)
            r.fail("inflight-gate limit mismatch");
        if (!r.ok())
            return r.error();
        net.inflightGate_->active_ = active;
    }

    expectTag(r, kTagMetrics, "METR");
    restoreRegistry(r, net.metrics_);
    if (!r.ok())
        return r.error();

    expectTag(r, kTagClosed, "DRVC");
    const std::uint64_t nClosed = r.count(45);
    if (r.ok() && nClosed != parts.closedDrivers.size())
        r.fail("closed-loop driver count mismatch");
    if (!r.ok())
        return r.error();
    for (ClosedLoopDriver *d : parts.closedDrivers) {
        getRng(r, d->rng_);
        d->nextSubmit_ = r.u64();
        d->waiting_ = r.u8() != 0;
        d->submitted_ = r.u64();
        const std::uint64_t nIds = r.count(8);
        if (!r.ok())
            return r.error();
        d->ids_.clear();
        for (std::uint64_t i = 0; i < nIds; ++i) {
            const std::uint64_t id = r.u64();
            if (!r.ok())
                return r.error();
            if (!net.tracker_.known(id))
                return "driver message id unknown to the ledger";
            d->ids_.push_back(id);
        }
    }

    expectTag(r, kTagOpen, "DRVO");
    const std::uint64_t nOpen = r.count(48);
    if (r.ok() && nOpen != parts.openDrivers.size())
        r.fail("open-loop driver count mismatch");
    if (!r.ok())
        return r.error();
    for (OpenLoopDriver *d : parts.openDrivers) {
        getRng(r, d->rng_);
        d->process_.setPhaseOn(r.u8() != 0);
        d->submitted_ = r.u64();
        const std::uint64_t nIds = r.count(8);
        if (!r.ok())
            return r.error();
        d->ids_.clear();
        for (std::uint64_t i = 0; i < nIds; ++i) {
            const std::uint64_t id = r.u64();
            if (!r.ok())
                return r.error();
            if (!net.tracker_.known(id))
                return "driver message id unknown to the ledger";
            d->ids_.push_back(id);
        }
    }

    expectTag(r, kTagInjector, "INJE");
    const bool injPresent = r.u8() != 0;
    if (r.ok() && injPresent != (parts.injector != nullptr))
        r.fail("fault-injector presence mismatch");
    if (!r.ok())
        return r.error();
    if (injPresent) {
        // Events are rebuilt structurally from the same fault list;
        // tick() fires on exact-cycle matches only, so restoring
        // the applied tally is all it takes for past events never
        // to re-fire.
        parts.injector->applied_ = r.u64();
    }

    expectTag(r, kTagCampaign, "CAMP");
    const bool campPresent = r.u8() != 0;
    if (r.ok() && campPresent != (parts.campaign != nullptr))
        r.fail("fault-campaign presence mismatch");
    if (!r.ok())
        return r.error();
    if (campPresent) {
        FaultCampaign &camp = *parts.campaign;
        getRng(r, camp.rng_);
        const std::uint64_t nDown = r.count(4);
        if (!r.ok())
            return r.error();
        camp.downLinks_.clear();
        for (std::uint64_t i = 0; i < nDown; ++i) {
            const LinkId l = r.u32();
            if (!r.ok())
                return r.error();
            if (l >= net.links_.size())
                return "campaign down-link id out of range";
            camp.downLinks_.push_back(l);
        }
        const std::uint64_t nDead = r.count(4);
        if (!r.ok())
            return r.error();
        camp.deadRouters_.clear();
        for (std::uint64_t i = 0; i < nDead; ++i) {
            const RouterId rid = r.u32();
            if (!r.ok())
                return r.error();
            if (rid >= net.routers_.size())
                return "campaign dead-router id out of range";
            camp.deadRouters_.push_back(rid);
        }
        const std::uint64_t nFlaky = r.count(13);
        if (r.ok() && nFlaky != camp.flaky_.size())
            r.fail("campaign flaky-link count mismatch");
        if (!r.ok())
            return r.error();
        for (auto &f : camp.flaky_) {
            const LinkId l = r.u32();
            f.nextToggle = r.u64();
            f.down = r.u8() != 0;
            if (!r.ok())
                return r.error();
            if (l >= net.links_.size())
                return "campaign flaky-link id out of range";
            f.link = l;
        }
    }

    expectTag(r, kTagDiag, "DIAG");
    const bool diagPresent = r.u8() != 0;
    if (r.ok() && diagPresent != (parts.diagnosis != nullptr))
        r.fail("diagnosis-engine presence mismatch");
    if (!r.ok())
        return r.error();
    if (diagPresent) {
        restoreDiag(r, *parts.diagnosis);
        if (!r.ok())
            return r.error();
    }

    expectTag(r, kTagHarness, "HARN");
    {
        std::vector<std::uint8_t> blob = r.blob();
        if (!r.ok())
            return r.error();
        if (harness != nullptr)
            *harness = std::move(blob);
    }

    expectTag(r, kTagDone, "DONE");
    if (!r.ok())
        return r.error();

    // --- Derived-state fix-ups (the order matters) ---

    // Link wake counts: the counted form of the link-activity sleep
    // veto. Zero everything, then count each restored-active link at
    // both ends.
    for (Component *c : eng.components_)
        c->schedActiveLinks_ = 0;
    for (Link *l : eng.links_) {
        if (!l->active_)
            continue;
        if (l->wakeA_ != nullptr)
            ++l->wakeA_->schedActiveLinks_;
        if (l->wakeB_ != nullptr)
            ++l->wakeB_->schedActiveLinks_;
    }

    // Engine clock and scheduler tallies.
    eng.now_ = cycle;
    eng.ticksSkipped_ = ticksSkipped;
    eng.linksFastpathed_ = linksFastpathed;
    eng.stepping_ = false;

    // A fresh instance's addLink calls queued every link for a
    // first-sleep evaluation; the restored run already made those
    // verdicts (they are baked into active_/flags_), and repeating
    // them here would deactivate links the uninterrupted run left
    // active — perturbing the skip counters that the byte-identity
    // contract covers.
    eng.pendingLinkEval_.clear();

    // The shard plan caches per-shard awake counts that the restore
    // just invalidated wholesale — same hazard removeComponents()
    // has. Rebuild lazily at the next cycle, at whatever thread
    // count THIS engine runs (a checkpoint carries no thread
    // count).
    eng.planDirty_ = true;

    return "";
}

std::uint64_t
checkpointDigest(const std::string &canonical)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : canonical) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
checkpointChecksum(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t k = 0; k < size; ++k) {
        h ^= data[k];
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
appendCheckpointFooter(std::vector<std::uint8_t> &bytes)
{
    const std::uint64_t len = bytes.size();
    const std::uint64_t sum =
        checkpointChecksum(bytes.data(), bytes.size());
    StateWriter w;
    w.u64(len);
    w.u64(sum);
    w.u32(kCheckpointFooterMagic);
    const auto &footer = w.buffer();
    bytes.insert(bytes.end(), footer.begin(), footer.end());
}

std::string
verifyCheckpointFooter(const std::uint8_t *data, std::size_t size,
                       std::size_t *payload_size)
{
    if (size < kCheckpointFooterSize)
        return "checkpoint shorter than its integrity footer";
    const std::uint8_t *foot = data + size - kCheckpointFooterSize;
    StateReader r(foot, kCheckpointFooterSize);
    const std::uint64_t len = r.u64();
    const std::uint64_t sum = r.u64();
    const std::uint32_t magic = r.u32();
    if (magic != kCheckpointFooterMagic)
        return "checkpoint footer magic missing (truncated file, "
               "or a pre-footer v1 checkpoint)";
    if (len != size - kCheckpointFooterSize)
        return "checkpoint footer length mismatch: footer says " +
               std::to_string(len) + " payload bytes, file has " +
               std::to_string(size - kCheckpointFooterSize);
    if (sum != checkpointChecksum(data, len))
        return "checkpoint footer checksum mismatch (corrupted "
               "file)";
    if (payload_size != nullptr)
        *payload_size = len;
    return "";
}

std::vector<std::uint8_t>
saveCheckpointBytes(std::uint64_t config_digest,
                    const CheckpointParticipants &parts,
                    const std::vector<std::uint8_t> &harness_blob)
{
    StateWriter w;
    CheckpointIO::save(w, config_digest, parts, harness_blob);
    std::vector<std::uint8_t> bytes = w.take();
    appendCheckpointFooter(bytes);
    return bytes;
}

std::string
restoreCheckpointBytes(const std::uint8_t *data, std::size_t size,
                       std::uint64_t config_digest,
                       const CheckpointParticipants &parts,
                       std::vector<std::uint8_t> *harness_blob)
{
    // Whole-file integrity first: nothing below may run against a
    // truncated or bit-flipped file.
    std::size_t payload = 0;
    const std::string ferr =
        verifyCheckpointFooter(data, size, &payload);
    if (!ferr.empty())
        return ferr;
    StateReader r(data, payload);
    return CheckpointIO::restore(r, config_digest, parts,
                                 harness_blob);
}

namespace
{

/** One-shot write-fault injection state (see
 *  setCheckpointWriteFault / METRO_CRASH_AT_WRITE_BYTE). */
long long g_writeFaultBytes = -1;
bool g_writeFaultAborts = false;
bool g_writeFaultEnvChecked = false;

/** Arm the abort-mode fault from the environment, once. */
void
armWriteFaultFromEnv()
{
    if (g_writeFaultEnvChecked)
        return;
    g_writeFaultEnvChecked = true;
    const char *env = std::getenv("METRO_CRASH_AT_WRITE_BYTE");
    if (env == nullptr || *env == '\0')
        return;
    char *end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 0) {
        g_writeFaultBytes = v;
        g_writeFaultAborts = true;
    }
}

} // namespace

void
setCheckpointWriteFault(long long max_bytes, bool abort_process)
{
    g_writeFaultBytes = max_bytes;
    g_writeFaultAborts = abort_process;
    // A programmatic setting overrides (and suppresses) the env.
    g_writeFaultEnvChecked = true;
}

std::string
writeCheckpointFile(const std::string &path,
                    std::uint64_t config_digest,
                    const CheckpointParticipants &parts,
                    const std::vector<std::uint8_t> &harness_blob)
{
    const std::vector<std::uint8_t> bytes =
        saveCheckpointBytes(config_digest, parts, harness_blob);
    return writeCheckpointBytesDurably(path, bytes);
}

std::string
writeCheckpointBytesDurably(const std::string &path,
                            const std::vector<std::uint8_t> &bytes)
{
    armWriteFaultFromEnv();
    const std::string tmp = path + ".tmp";

    // Never expose a partial file at the final path: write the
    // whole payload to <path>.tmp, fsync it, and only then rename
    // over the target. rename(2) is atomic within a filesystem, so
    // a crash at ANY point here leaves either the old checkpoint or
    // the new one — plus at worst a stale .tmp the next write
    // overwrites.
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return "cannot open checkpoint temp file for writing: " +
               tmp;

    std::size_t toWrite = bytes.size();
    bool injectedFault = false;
    if (g_writeFaultBytes >= 0 &&
        static_cast<unsigned long long>(g_writeFaultBytes) <
            bytes.size()) {
        toWrite = static_cast<std::size_t>(g_writeFaultBytes);
        injectedFault = true;
    }

    const std::size_t written =
        toWrite == 0 ? 0 : std::fwrite(bytes.data(), 1, toWrite, f);

    if (injectedFault) {
        const bool aborts = g_writeFaultAborts;
        g_writeFaultBytes = -1; // one-shot
        if (aborts) {
            // Crash injection: die mid-write, partial .tmp on disk,
            // final path untouched. fflush first so the truncation
            // is actually visible to the post-mortem.
            std::fflush(f);
            std::fprintf(stderr,
                         "metro_sim: injected crash after %zu "
                         "checkpoint bytes (%s)\n",
                         toWrite, tmp.c_str());
            std::fflush(stderr);
            std::abort();
        }
        std::fclose(f);
        std::remove(tmp.c_str());
        return "short write to checkpoint temp file: " + tmp;
    }

    const bool writeOk = written == bytes.size();
    const bool flushOk = std::fflush(f) == 0;
    const bool syncOk = writeOk && flushOk &&
                        ::fsync(::fileno(f)) == 0;
    const int rc = std::fclose(f);
    if (!writeOk || !flushOk || !syncOk || rc != 0) {
        // Unlink the partial temp file rather than leaving a
        // corrupt checkpoint behind (the final path was never
        // touched).
        std::remove(tmp.c_str());
        return "short write to checkpoint temp file: " + tmp;
    }

    if (g_writeFaultBytes >= 0 && g_writeFaultAborts) {
        // K >= payload size: the injected crash lands after the
        // payload is durable but BEFORE the rename — the classic
        // "checkpoint written but not installed" window.
        g_writeFaultBytes = -1;
        std::fprintf(stderr,
                     "metro_sim: injected crash before checkpoint "
                     "rename (%s)\n",
                     tmp.c_str());
        std::fflush(stderr);
        std::abort();
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return "cannot rename checkpoint into place: " + path;
    }

    // Make the rename itself durable: fsync the directory entry.
    std::string dir = path;
    const auto slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return "";
}

std::string
readCheckpointFile(const std::string &path,
                   std::uint64_t config_digest,
                   const CheckpointParticipants &parts,
                   std::vector<std::uint8_t> *harness_blob)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return "cannot open checkpoint file: " + path;
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[1 << 16];
    for (;;) {
        const std::size_t n =
            std::fread(chunk, 1, sizeof(chunk), f);
        bytes.insert(bytes.end(), chunk, chunk + n);
        if (n < sizeof(chunk))
            break;
    }
    const bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError)
        return "read error on checkpoint file: " + path;
    return restoreCheckpointBytes(bytes.data(), bytes.size(),
                                  config_digest, parts, harness_blob);
}

} // namespace metro
