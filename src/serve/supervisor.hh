/**
 * @file
 * Watchdog supervisor for the serve loop.
 *
 * `metro_sim --supervise` runs the serve loop in a CHILD process
 * (fork/exec of the same binary with the supervisor-only flags
 * stripped) and watches it through two pipes:
 *
 *  - the child's stdout, carrying the window JSONL stream, which
 *    the supervisor forwards to its own stdout;
 *  - a heartbeat pipe (fd passed via METRO_HEARTBEAT_FD), into
 *    which the child writes the engine clock at every window
 *    boundary.
 *
 * Two failure shapes are detected and recovered:
 *
 *  - crash-exit: the child dies (non-zero exit or a signal, e.g.
 *    the torture harness's injected abort());
 *  - stall: neither pipe shows progress within the stall deadline
 *    (e.g. a hung drain); the child is SIGKILLed.
 *
 * Recovery re-execs the child with `--restore-auto`, so it resumes
 * from the newest checkpoint in the retention store whose
 * integrity footer verifies (crash-injection flags and the
 * METRO_CRASH_AT_WRITE_BYTE environment variable are stripped from
 * restarted children: injected faults are one-shot). Restarts are
 * paced by exponential backoff and bounded by a restart budget —
 * a genuine crash loop must not spin forever.
 *
 * Exactly-once window stream: the restored child re-emits every
 * window since its checkpoint, so the supervisor forwards a window
 * record only when its "window" sequence number is the next one
 * not yet forwarded, and drops an unterminated partial line when a
 * child dies mid-write. The supervised stream is therefore
 * byte-identical to an uninterrupted run's — modulo the
 * `{"supervisor":...}` marker records it interleaves (one per
 * restart, one final summary), which carry restart counts and
 * MTTR and are trivially filterable.
 */

#ifndef METRO_SERVE_SUPERVISOR_HH
#define METRO_SERVE_SUPERVISOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace metro
{

/** Settings for runSupervisor (CLI: --supervise and friends). */
struct SupervisorConfig
{
    /** Binary to fork/exec (the CLI passes its own argv[0]). */
    std::string exe;

    /** Raw child arguments (the supervisor's argv[1..]; the
     *  supervisor-only and, on restarts, crash-injection flags are
     *  filtered out here). */
    std::vector<std::string> args;

    /** Restarts allowed before giving up. */
    unsigned restartBudget = 8;

    /** No window record AND no heartbeat for this long = stalled
     *  child, SIGKILL + restart. */
    std::uint64_t stallTimeoutMs = 30000;

    /** Crash-loop backoff: restart n waits
     *  min(cap, base * 2^(n-1)) milliseconds. @{ */
    std::uint64_t backoffBaseMs = 100;
    std::uint64_t backoffCapMs = 10000;
    /** @} */
};

/**
 * Supervise serve children until one completes cleanly (exit 0, or
 * 130 after a graceful SIGINT/SIGTERM stop), the restart budget is
 * exhausted, or the operator stops the supervisor itself. Returns
 * the process exit code: the clean child's code, or 1 on budget
 * exhaustion / exec failure.
 */
int runSupervisor(const SupervisorConfig &config);

} // namespace metro

#endif // METRO_SERVE_SUPERVISOR_HH
