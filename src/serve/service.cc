#include "serve/service.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include "endpoint/interface.hh"
#include "network/network.hh"
#include "router/tap.hh"
#include "serve/stateio.hh"
#include "sim/engine.hh"
#include "sim/link.hh"

namespace metro
{

namespace
{

/** Minimal JSON string escaping (counter names are identifiers, but
 *  stay robust anyway). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
phaseName(std::uint8_t phase)
{
    switch (phase) {
      case 0:
        return "pending";
      case 1:
        return "draining";
      case 2:
        return "disabled";
      case 3:
        return "reenabling";
      default:
        return "done";
    }
}

} // namespace

bool
parseMaintenanceOp(const std::string &text, MaintenanceOp &op)
{
    const auto at = text.find('@');
    const auto plus = text.find('+', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || plus == std::string::npos ||
        at == 0 || plus <= at + 1 || plus + 1 >= text.size())
        return false;
    char *end = nullptr;
    const std::string r = text.substr(0, at);
    const std::string s = text.substr(at + 1, plus - at - 1);
    const std::string d = text.substr(plus + 1);
    op.router =
        static_cast<RouterId>(std::strtoull(r.c_str(), &end, 10));
    if (end == nullptr || *end != '\0')
        return false;
    op.start = std::strtoull(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    op.duration = std::strtoull(d.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

std::string
conservationViolation(const Network &net,
                      const MetricsRegistry &snapshot)
{
    const auto injected = snapshot.get("words.injected");
    const auto delivered = snapshot.get("words.delivered");
    const auto block = snapshot.get("words.discarded.block");
    const auto router = snapshot.get("words.discarded.router");
    const auto endpoint = snapshot.get("words.discarded.endpoint");
    const auto wire = snapshot.get("words.discarded.wire");
    const auto inflight = net.inFlightDataWords();
    if (injected !=
        delivered + block + router + endpoint + wire + inflight) {
        return "wire conservation violated: injected=" +
               std::to_string(injected) +
               " != delivered=" + std::to_string(delivered) +
               " + block=" + std::to_string(block) +
               " + router=" + std::to_string(router) +
               " + endpoint=" + std::to_string(endpoint) +
               " + wire=" + std::to_string(wire) +
               " + inflight=" + std::to_string(inflight);
    }
    const auto submitted = snapshot.get("words.submitted");
    const auto admitted = snapshot.get("words.admitted");
    const auto shed = snapshot.get("words.shed.admission");
    if (submitted != admitted + shed) {
        return "admission conservation violated: submitted=" +
               std::to_string(submitted) +
               " != admitted=" + std::to_string(admitted) +
               " + shed=" + std::to_string(shed);
    }
    return "";
}

ServiceRunner::ServiceRunner(const ServeConfig &config,
                             CheckpointParticipants parts)
    : config_(config), parts_(std::move(parts))
{
    METRO_ASSERT(parts_.net != nullptr, "serve needs a network");
    METRO_ASSERT(config_.window > 0, "window must be positive");
    ops_.resize(config_.maintenance.size());
    prev_ = parts_.net->metricsSnapshot();
    nextCheckpointAt_ = config_.checkpointEvery;
    if (config_.checkpointEvery > 0 &&
        !config_.checkpointOut.empty()) {
        store_ = std::make_unique<CheckpointStore>(
            config_.checkpointOut, config_.checkpointKeep);
        // A malformed manifest is surfaced on first store use, not
        // here (constructors cannot return errors).
        storeLoadError_ = store_->load();
    }
}

void
ServiceRunner::setEmitter(std::function<void(const std::string &)> emit)
{
    emit_ = std::move(emit);
}

void
ServiceRunner::setHeartbeat(std::function<void(Cycle)> heartbeat)
{
    heartbeat_ = std::move(heartbeat);
}

bool
ServiceRunner::routerDrained(RouterId r) const
{
    Network &net = *parts_.net;
    if (!net.router(r).quiescent())
        return false;
    for (LinkId l = 0; l < net.numLinks(); ++l) {
        const Link &link = net.link(l);
        const auto touches = [r](const LinkEnd &e) {
            return (e.kind == AttachKind::RouterForward ||
                    e.kind == AttachKind::RouterBackward) &&
                   e.id == r;
        };
        if (!touches(link.endA()) && !touches(link.endB()))
            continue;
        if (link.downOccupied() != 0 || link.upOccupied() != 0)
            return false;
    }
    return true;
}

void
ServiceRunner::beginDrain(const MaintenanceOp &op, OpState &st)
{
    Network &net = *parts_.net;
    st.feeders.clear();
    for (LinkId l = 0; l < net.numLinks(); ++l) {
        const LinkEnd &b = net.link(l).endB();
        if (b.kind != AttachKind::RouterForward || b.id != op.router)
            continue;
        const LinkEnd &a = net.link(l).endA();
        OpState::Feeder f;
        if (a.kind == AttachKind::RouterBackward) {
            f.fromRouter = true;
            f.id = a.id;
            f.port = a.port;
            f.prevEnabled =
                net.router(a.id).config().backwardEnabled[a.port];
        } else if (a.kind == AttachKind::Endpoint) {
            f.fromRouter = false;
            f.id = a.id;
            f.port = a.subPort; // injection-port group index
            f.prevEnabled = net.endpoint(a.id).outPortEnabled(a.subPort);
        } else {
            continue;
        }
        // Cascade slices of one endpoint group can land on several
        // routers; one disable covers them all.
        const auto dup = std::find_if(
            st.feeders.begin(), st.feeders.end(),
            [&f](const OpState::Feeder &g) {
                return g.fromRouter == f.fromRouter && g.id == f.id &&
                       g.port == f.port;
            });
        if (dup != st.feeders.end())
            continue;
        st.feeders.push_back(f);
        if (f.fromRouter)
            Tap(&net.router(f.id))
                .writeBackwardEnable(f.port, false);
        else
            net.endpoint(f.id).setOutPortEnabled(f.port, false);
    }
}

void
ServiceRunner::disableRouter(const MaintenanceOp &op, OpState &st)
{
    Network &net = *parts_.net;
    MetroRouter &rt = net.router(op.router);
    Tap tap(&rt);
    const RouterConfig &cfg = rt.config();
    st.savedForward.assign(cfg.forwardEnabled.size(), 0);
    st.savedBackward.assign(cfg.backwardEnabled.size(), 0);
    for (std::size_t p = 0; p < st.savedForward.size(); ++p)
        st.savedForward[p] = cfg.forwardEnabled[p] ? 1 : 0;
    for (std::size_t p = 0; p < st.savedBackward.size(); ++p)
        st.savedBackward[p] = cfg.backwardEnabled[p] ? 1 : 0;
    for (PortIndex p = 0;
         p < static_cast<PortIndex>(st.savedForward.size()); ++p)
        tap.writeForwardEnable(p, false);
    for (PortIndex p = 0;
         p < static_cast<PortIndex>(st.savedBackward.size()); ++p)
        tap.writeBackwardEnable(p, false);
}

bool
ServiceRunner::stepReenable(const MaintenanceOp &op, OpState &st)
{
    Network &net = *parts_.net;
    const std::uint64_t nB = st.savedBackward.size();
    const std::uint64_t nF = st.savedForward.size();
    if (st.reenableCursor < nB + nF) {
        Tap tap(&net.router(op.router));
        if (st.reenableCursor < nB) {
            // Reverse of disable order: last-disabled first.
            const auto p = static_cast<PortIndex>(
                nB - 1 - st.reenableCursor);
            tap.writeBackwardEnable(p, st.savedBackward[p] != 0);
        } else {
            const auto p = static_cast<PortIndex>(
                nF - 1 - (st.reenableCursor - nB));
            tap.writeForwardEnable(p, st.savedForward[p] != 0);
        }
        ++st.reenableCursor;
        return false;
    }
    // All router ports back; release the feeders in one go.
    for (const OpState::Feeder &f : st.feeders) {
        if (f.fromRouter)
            Tap(&net.router(f.id))
                .writeBackwardEnable(f.port, f.prevEnabled);
        else
            net.endpoint(f.id).setOutPortEnabled(f.port,
                                                 f.prevEnabled);
    }
    return true;
}

void
ServiceRunner::maintenanceTick(Cycle now)
{
    for (std::size_t k = 0; k < ops_.size(); ++k) {
        const MaintenanceOp &op = config_.maintenance[k];
        OpState &st = ops_[k];
        switch (st.phase) {
          case OpState::Phase::Pending:
            if (now >= op.start) {
                beginDrain(op, st);
                st.phase = OpState::Phase::Draining;
            }
            break;
          case OpState::Phase::Draining:
            if (routerDrained(op.router)) {
                disableRouter(op, st);
                st.phase = OpState::Phase::Disabled;
            }
            break;
          case OpState::Phase::Disabled:
            if (now >= op.start + op.duration) {
                st.reenableCursor = 0;
                st.phase = OpState::Phase::Reenabling;
                // First rolling step happens this boundary.
                if (stepReenable(op, st))
                    st.phase = OpState::Phase::Done;
            }
            break;
          case OpState::Phase::Reenabling:
            if (stepReenable(op, st))
                st.phase = OpState::Phase::Done;
            break;
          case OpState::Phase::Done:
            break;
        }
    }
}

std::string
ServiceRunner::windowJson(Cycle now, const MetricsRegistry &delta,
                          std::uint64_t inflight) const
{
    std::string out = "{\"window\":" + std::to_string(windowIndex_) +
                      ",\"cycle\":" + std::to_string(now) +
                      ",\"inflight\":" + std::to_string(inflight);
    if (!ops_.empty()) {
        out += ",\"maintenance\":[";
        for (std::size_t k = 0; k < ops_.size(); ++k) {
            if (k > 0)
                out += ",";
            out += "{\"router\":" +
                   std::to_string(config_.maintenance[k].router) +
                   ",\"phase\":\"" +
                   phaseName(
                       static_cast<std::uint8_t>(ops_[k].phase)) +
                   "\"}";
        }
        out += "]";
    }
    out += ",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : delta.counters()) {
        if (value == 0)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(name) +
               "\":" + std::to_string(value);
    }
    out += "}";
    // This window's histogram deltas (occupied buckets only) — the
    // SLO aggregator computes per-window latency percentiles from
    // these. Deterministic: std::map order, simulated values only.
    bool firstHist = true;
    for (const auto &[name, h] : delta.histograms()) {
        if (h.count() == 0)
            continue;
        out += firstHist ? ",\"hist\":{" : ",";
        firstHist = false;
        out += "\"" + jsonEscape(name) +
               "\":{\"n\":" + std::to_string(h.count()) +
               ",\"sum\":" + std::to_string(h.sum()) + ",\"b\":[";
        bool firstBucket = true;
        for (unsigned k = 0; k < LogHistogram::kBuckets; ++k) {
            if (h.bucket(k) == 0)
                continue;
            if (!firstBucket)
                out += ",";
            firstBucket = false;
            out += "[" +
                   std::to_string(LogHistogram::bucketFloor(k)) +
                   "," + std::to_string(h.bucket(k)) + "]";
        }
        out += "]}";
    }
    if (!firstHist)
        out += "}";
    out += "}";
    return out;
}

std::vector<std::uint8_t>
ServiceRunner::harnessBlob() const
{
    StateWriter w;
    w.u64(windowIndex_);
    w.u8(checkpointDone_ ? 1 : 0);
    w.u64(nextCheckpointAt_);
    w.u64(ops_.size());
    for (const OpState &st : ops_) {
        w.u8(static_cast<std::uint8_t>(st.phase));
        w.u64(st.reenableCursor);
        w.u64(st.feeders.size());
        for (const OpState::Feeder &f : st.feeders) {
            w.u8(f.fromRouter ? 1 : 0);
            w.u32(f.id);
            w.u32(f.port);
            w.u8(f.prevEnabled ? 1 : 0);
        }
        w.u64(st.savedForward.size());
        for (std::uint8_t v : st.savedForward)
            w.u8(v);
        w.u64(st.savedBackward.size());
        for (std::uint8_t v : st.savedBackward)
            w.u8(v);
    }
    return w.take();
}

std::string
ServiceRunner::applyHarnessBlob(const std::vector<std::uint8_t> &blob)
{
    Network &net = *parts_.net;
    StateReader r(blob.data(), blob.size());
    const std::uint64_t windowIndex = r.u64();
    const bool checkpointDone = r.u8() != 0;
    const Cycle nextCheckpointAt = r.u64();
    const std::uint64_t nOps = r.count(10);
    if (r.ok() && nOps != ops_.size())
        r.fail("maintenance op count mismatch (same --maintain "
               "flags required on restore)");
    if (!r.ok())
        return r.error();
    std::vector<OpState> ops(nOps);
    for (std::size_t k = 0; k < nOps; ++k) {
        OpState &st = ops[k];
        const std::uint8_t phase = r.u8();
        st.reenableCursor = r.u64();
        const std::uint64_t nFeeders = r.count(10);
        if (!r.ok())
            return r.error();
        if (phase > static_cast<std::uint8_t>(OpState::Phase::Done))
            return "invalid maintenance phase";
        st.phase = static_cast<OpState::Phase>(phase);
        st.feeders.resize(nFeeders);
        for (OpState::Feeder &f : st.feeders) {
            f.fromRouter = r.u8() != 0;
            f.id = r.u32();
            f.port = r.u32();
            f.prevEnabled = r.u8() != 0;
            if (!r.ok())
                return r.error();
            if (f.fromRouter) {
                if (f.id >= net.numRouters() ||
                    f.port >= net.router(f.id)
                                  .config()
                                  .backwardEnabled.size())
                    return "maintenance feeder out of range";
            } else {
                if (f.id >= net.numEndpoints() ||
                    f.port >= net.endpoint(f.id).numOutPorts())
                    return "maintenance feeder out of range";
            }
        }
        const std::uint64_t nFwd = r.count(1);
        if (!r.ok())
            return r.error();
        st.savedForward.resize(nFwd);
        for (auto &v : st.savedForward)
            v = r.u8();
        const std::uint64_t nBwd = r.count(1);
        if (!r.ok())
            return r.error();
        st.savedBackward.resize(nBwd);
        for (auto &v : st.savedBackward)
            v = r.u8();
        const MaintenanceOp &op = config_.maintenance[k];
        if (op.router >= net.numRouters())
            return "maintenance router out of range";
        const RouterConfig &cfg = net.router(op.router).config();
        const bool sizesOk =
            (nFwd == 0 || nFwd == cfg.forwardEnabled.size()) &&
            (nBwd == 0 || nBwd == cfg.backwardEnabled.size());
        if (!sizesOk)
            return "maintenance saved-enable size mismatch";
        if (st.reenableCursor > nFwd + nBwd)
            return "maintenance re-enable cursor out of range";
    }
    if (!r.ok())
        return r.error();
    windowIndex_ = windowIndex;
    checkpointDone_ = checkpointDone;
    // The saver advanced its schedule *before* serializing, so this
    // is the next due cycle from the restore point onward (the
    // saver's own checkpointEvery wins over ours only in the blob's
    // absence — i.e. never; same flags are required on restore).
    nextCheckpointAt_ = nextCheckpointAt;
    ops_ = std::move(ops);
    return "";
}

std::string
ServiceRunner::restoreFromBytes(const std::uint8_t *data,
                                std::size_t size)
{
    std::vector<std::uint8_t> blob;
    const std::string err = restoreCheckpointBytes(
        data, size, config_.configDigest, parts_, &blob);
    if (!err.empty())
        return err;
    if (!blob.empty()) {
        const std::string herr = applyHarnessBlob(blob);
        if (!herr.empty())
            return herr;
    } else {
        // Checkpoint taken outside serve mode: derive the window
        // index from the clock (serve always starts at cycle 0).
        windowIndex_ =
            parts_.net->engine().now() / config_.window;
    }
    // The boundary snapshot is a pure function of restored state;
    // recomputing it reproduces the saver's byte-for-byte.
    prev_ = parts_.net->metricsSnapshot();
    return "";
}

std::string
ServiceRunner::restoreFromFile(const std::string &path)
{
    std::vector<std::uint8_t> blob;
    const std::string err = readCheckpointFile(
        path, config_.configDigest, parts_, &blob);
    if (!err.empty())
        return err;
    if (!blob.empty()) {
        const std::string herr = applyHarnessBlob(blob);
        if (!herr.empty())
            return herr;
    } else {
        windowIndex_ =
            parts_.net->engine().now() / config_.window;
    }
    prev_ = parts_.net->metricsSnapshot();
    return "";
}

std::string
ServiceRunner::checkpointToFile(const std::string &path)
{
    return writeCheckpointFile(path, config_.configDigest, parts_,
                               harnessBlob());
}

std::string
ServiceRunner::checkpointToStore()
{
    if (store_ == nullptr)
        return "periodic checkpointing not configured "
               "(--checkpoint-every with --checkpoint-out)";
    if (!storeLoadError_.empty())
        return storeLoadError_;
    return store_->write(parts_.net->engine().now(),
                         saveCheckpointBytes(config_.configDigest,
                                             parts_,
                                             harnessBlob()));
}

std::string
ServiceRunner::restoreFromStore(bool &restored)
{
    restored = false;
    if (store_ == nullptr)
        return "periodic checkpointing not configured "
               "(--checkpoint-every with --checkpoint-out)";
    if (!storeLoadError_.empty())
        return storeLoadError_;
    for (const auto &entry : store_->entries()) {
        std::vector<std::uint8_t> bytes;
        std::string err = store_->read(entry, bytes);
        if (err.empty())
            err = verifyCheckpointFooter(bytes.data(), bytes.size(),
                                         nullptr);
        if (!err.empty()) {
            // Fall back to the next-newest retained checkpoint: a
            // torn or bit-flipped file must not take the service
            // down when an older valid recovery point exists.
            std::fprintf(stderr,
                         "metro_sim: skipping checkpoint %s: %s\n",
                         store_->pathOf(entry).c_str(),
                         err.c_str());
            continue;
        }
        // Footer-valid: restore for real. A failure past this
        // point may have partially overwritten the instance, so it
        // is a hard error, not a fallback.
        err = restoreFromBytes(bytes.data(), bytes.size());
        if (!err.empty())
            return "restoring " + store_->pathOf(entry) + ": " +
                   err;
        restored = true;
        return "";
    }
    return "";
}

std::string
ServiceRunner::run(const std::function<bool()> &stop_requested)
{
    Network &net = *parts_.net;
    Engine &eng = net.engine();
    for (;;) {
        if (stop_requested && stop_requested())
            return "";
        if (config_.runCycles != 0 && eng.now() >= config_.runCycles)
            return "";
        Cycle target = eng.now() + config_.window;
        if (config_.runCycles != 0)
            target = std::min(target, config_.runCycles);

        // Deterministic fault injection: cut the engine run at the
        // injected cycle so the crash/stall lands exactly there —
        // mid-window, at a boundary, or mid-maintenance-drain. A
        // cycle the clock is already past (restored beyond it) is
        // inert.
        const Cycle before = eng.now();
        Cycle cut = target;
        if (config_.stallAtCycle > before &&
            config_.stallAtCycle <= cut)
            cut = config_.stallAtCycle;
        if (config_.crashAtCycle > before &&
            config_.crashAtCycle <= cut)
            cut = config_.crashAtCycle;
        eng.run(cut - before);
        if (config_.crashAtCycle != 0 &&
            eng.now() == config_.crashAtCycle) {
            std::fprintf(stderr,
                         "metro_sim: injected crash at cycle %llu\n",
                         static_cast<unsigned long long>(
                             eng.now()));
            std::fflush(stderr);
            std::abort();
        }
        if (config_.stallAtCycle != 0 &&
            eng.now() == config_.stallAtCycle) {
            // Hang without exiting or heartbeating: the stalled-
            // child shape the supervisor's watchdog must catch and
            // SIGKILL.
            std::fprintf(stderr,
                         "metro_sim: injected stall at cycle "
                         "%llu\n",
                         static_cast<unsigned long long>(
                             eng.now()));
            std::fflush(stderr);
            for (;;)
                ::pause();
        }
        const Cycle now = eng.now();

        maintenanceTick(now);

        const MetricsRegistry snap = net.metricsSnapshot();
        const std::string violation =
            conservationViolation(net, snap);
        if (!violation.empty())
            return "window " + std::to_string(windowIndex_) +
                   " (cycle " + std::to_string(now) +
                   "): " + violation;
        if (emit_)
            emit_(windowJson(now, snap.deltaSince(prev_),
                             net.inFlightDataWords()));
        prev_ = snap;
        ++windowIndex_;

        if (heartbeat_)
            heartbeat_(now);

        if (store_ != nullptr && config_.checkpointEvery != 0 &&
            now >= nextCheckpointAt_) {
            // Advance the schedule *before* serializing (same
            // reasoning as checkpointDone_): the restored run must
            // next checkpoint where the uninterrupted one would
            // have, not re-write this one.
            nextCheckpointAt_ =
                (now / config_.checkpointEvery + 1) *
                config_.checkpointEvery;
            const std::string err = checkpointToStore();
            if (!err.empty())
                return err;
        }

        if (!checkpointDone_ && config_.checkpointAt != 0 &&
            !config_.checkpointOut.empty() &&
            now >= config_.checkpointAt) {
            // Mark done *before* serializing so the restored run
            // does not write the checkpoint again.
            checkpointDone_ = true;
            const std::string err =
                checkpointToFile(config_.checkpointOut);
            if (!err.empty())
                return err;
        }
    }
}

} // namespace metro
