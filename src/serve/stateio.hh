/**
 * @file
 * Little-endian binary state serialization for checkpoints.
 *
 * StateWriter appends fixed-width little-endian fields to a growable
 * byte buffer; StateReader walks one, refusing to read past the end.
 * Every variable-length read is bounds-checked against the remaining
 * bytes *before* any allocation, so a truncated or hostile
 * checkpoint (the fuzz target feeds arbitrary bytes) can neither
 * over-read nor provoke a huge allocation. After any failed read the
 * reader is poisoned: all further reads return zero values and ok()
 * stays false, so deserializers can run straight-line and check once
 * at the end (or at section boundaries).
 */

#ifndef METRO_SERVE_STATEIO_HH
#define METRO_SERVE_STATEIO_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace metro
{

/** Append-only little-endian field writer. */
class StateWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** IEEE-754 bit pattern (doubles here come only from token
     *  buckets; the bit pattern round-trips exactly). */
    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    /** Length-prefixed byte string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    /** Length-prefixed raw bytes. */
    void
    blob(const std::vector<std::uint8_t> &b)
    {
        u64(b.size());
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked little-endian field reader over borrowed bytes. */
class StateReader
{
  public:
    StateReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool ok() const { return ok_; }
    std::size_t remaining() const { return size_ - pos_; }
    const std::string &error() const { return error_; }

    /** Poison the reader with a deserialization error. Only the
     *  first error is retained (it names the root cause). */
    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            error_ = why;
        }
    }

    std::uint8_t
    u8()
    {
        if (!need(1, "u8"))
            return 0;
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        if (!need(2, "u16"))
            return 0;
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        if (!need(4, "u32"))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8, "u64"))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    /**
     * An element count whose payload needs at least
     * `min_bytes_per_elem` bytes each: rejected before allocation
     * when the remaining bytes cannot possibly hold it. The guard is
     * what keeps fuzzed counts from turning into multi-gigabyte
     * resize() calls.
     */
    std::uint64_t
    count(std::size_t min_bytes_per_elem)
    {
        const std::uint64_t n = u64();
        if (!ok_)
            return 0;
        const std::uint64_t per =
            min_bytes_per_elem == 0 ? 1 : min_bytes_per_elem;
        if (n > remaining() / per) {
            fail("element count exceeds remaining bytes");
            return 0;
        }
        return n;
    }

    std::string
    str()
    {
        const std::uint64_t n = count(1);
        if (!ok_)
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      n);
        pos_ += n;
        return s;
    }

    std::vector<std::uint8_t>
    blob()
    {
        const std::uint64_t n = count(1);
        if (!ok_)
            return {};
        std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
        pos_ += n;
        return b;
    }

  private:
    bool
    need(std::size_t n, const char *what)
    {
        if (!ok_)
            return false;
        if (remaining() < n) {
            fail(std::string("truncated checkpoint: short read of ") +
                 what);
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

} // namespace metro

#endif // METRO_SERVE_STATEIO_HH
