/**
 * @file
 * Long-running service mode: windowed metrics, checkpointing, and
 * planned maintenance.
 *
 * The ServiceRunner advances a fully-built simulation instance in
 * fixed-size cycle windows. At every window boundary it:
 *
 *  1. steps any planned-maintenance operations (drain-then-disable
 *     of a router via its TAP, later rolling re-enable);
 *  2. takes a metrics snapshot, asserts both word-conservation
 *     identities on it (wire conservation including in-flight words,
 *     and admission conservation), and emits the window's counter
 *     *deltas* as one compact JSON line;
 *  3. optionally writes a one-shot checkpoint (see checkpoint.hh)
 *     carrying both the full simulation state and the runner's own
 *     harness state, so a restored process continues the JSONL
 *     stream byte-identically;
 *  4. polls the caller's stop predicate (the CLI wires this to the
 *     SIGINT/SIGTERM flag in signal.hh).
 *
 * Maintenance drains are zero-loss by construction: the runner first
 * disables every upstream feeder into the target router (upstream
 * routers' backward ports via their TAPs, endpoint injection
 * groups), waits until the router is quiescent and all attached
 * lanes are empty, and only then disables the router's own ports.
 * Re-enable rolls one port per window in reverse order, restoring
 * the exact pre-drain enable states (which may themselves reflect
 * concurrent diagnosis masking).
 */

#ifndef METRO_SERVE_SERVICE_HH
#define METRO_SERVE_SERVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/registry.hh"
#include "serve/checkpoint.hh"
#include "serve/store.hh"

namespace metro
{

/** One planned maintenance operation on a router. */
struct MaintenanceOp
{
    RouterId router = 0;

    /** First window boundary at or after this cycle starts the
     *  drain. */
    Cycle start = 0;

    /** Minimum cycles the router stays disabled once drained;
     *  re-enable begins at the first boundary at or after
     *  start + duration. */
    Cycle duration = 0;
};

/** Parse "R@START+DURATION" (e.g. "5@2048+4096"). Returns true and
 *  fills `op` on success. */
bool parseMaintenanceOp(const std::string &text, MaintenanceOp &op);

/** Service-mode settings. */
struct ServeConfig
{
    /** Cycles per window (boundaries are multiples of this from the
     *  serve start). */
    Cycle window = 1024;

    /** Absolute cycle to stop at (0 = run until the stop predicate
     *  fires). Absolute so a restored run counts total simulated
     *  cycles, not cycles since restore. */
    Cycle runCycles = 0;

    /** Digest guarding checkpoint/restore config compatibility. */
    std::uint64_t configDigest = 0;

    /** One-shot checkpoint: written at the first window boundary at
     *  or after `checkpointAt` when non-zero. */
    std::string checkpointOut;
    Cycle checkpointAt = 0;

    /**
     * Periodic checkpoints: when non-zero, write a checkpoint into
     * the keep-last-N retention store under `checkpointOut` (files
     * `<path>.<seq>` + `<path>.manifest`, see serve/store.hh) at
     * the first window boundary at or after every multiple of this
     * many cycles. This is what makes a supervised service
     * restartable.
     */
    Cycle checkpointEvery = 0;

    /** Retention depth of the periodic-checkpoint store. */
    unsigned checkpointKeep = 3;

    /**
     * Deterministic crash injection (torture harness): abort() the
     * process the moment the engine clock reaches this cycle — mid
     * window, at a boundary, or mid-maintenance, wherever it lands.
     * 0 = off.
     */
    Cycle crashAtCycle = 0;

    /** Deterministic stall injection: stop making progress (and
     *  stop heartbeating) at this cycle without exiting, so the
     *  supervisor's stall watchdog has something to catch. 0 =
     *  off. */
    Cycle stallAtCycle = 0;

    std::vector<MaintenanceOp> maintenance;
};

/**
 * Check both word-conservation identities on a cumulative metrics
 * snapshot of `net`. Returns "" when both hold, else a description
 * of the violated identity with the term values.
 */
std::string conservationViolation(const Network &net,
                                  const MetricsRegistry &snapshot);

/**
 * The serve loop. Owns no simulation state: the caller builds the
 * instance (network, drivers, fault machinery) and passes the same
 * CheckpointParticipants that checkpointing uses.
 */
class ServiceRunner
{
  public:
    ServiceRunner(const ServeConfig &config,
                  CheckpointParticipants parts);

    /** Sink for the one-line JSON window records (stdout, a file, a
     *  test vector). Unset = windows are not emitted. */
    void setEmitter(std::function<void(const std::string &)> emit);

    /** Called with the engine clock at every window boundary, after
     *  the window record is emitted — the liveness signal the
     *  supervisor's stall watchdog consumes. */
    void setHeartbeat(std::function<void(Cycle)> heartbeat);

    /** Restore simulation + runner state from a checkpoint file (or
     *  raw bytes). Returns "" on success. Must be called before
     *  run(), on a freshly built instance. @{ */
    std::string restoreFromFile(const std::string &path);
    std::string restoreFromBytes(const std::uint8_t *data,
                                 std::size_t size);
    /** @} */

    /** Write a checkpoint (simulation + runner state) now. Only
     *  valid between windows — i.e. before run(), after run()
     *  returns, or from the emitter callback. Returns "" on
     *  success. */
    std::string checkpointToFile(const std::string &path);

    /** Write a checkpoint into the retention store now (requires
     *  checkpointEvery > 0 and a checkpointOut base). Returns ""
     *  on success. */
    std::string checkpointToStore();

    /**
     * Restore from the newest checkpoint in the retention store
     * whose integrity footer verifies, falling back entry by entry
     * past truncated or corrupted ones (each skip is logged to
     * stderr). An empty store is not an error: `restored` stays
     * false and the run starts fresh — the supervisor's dedupe
     * makes that correct, just slower. Returns "" on success.
     */
    std::string restoreFromStore(bool &restored);

    /** The retention store, when periodic checkpoints are
     *  configured (else nullptr). */
    const CheckpointStore *store() const { return store_.get(); }

    /**
     * Run windows until the stop predicate returns true, the
     * absolute cycle target is reached, or a window fails its
     * conservation check. Returns "" on a clean stop, else the
     * conservation-violation description.
     */
    std::string run(const std::function<bool()> &stop_requested = {});

    /** Windows emitted so far (continues across restore). */
    std::uint64_t windowsEmitted() const { return windowIndex_; }

    /** The cumulative snapshot taken at the last window boundary. */
    const MetricsRegistry &boundarySnapshot() const { return prev_; }

  private:
    /** Phase machine of one maintenance op. */
    struct OpState
    {
        enum class Phase : std::uint8_t
        {
            Pending,    ///< waiting for the start boundary
            Draining,   ///< feeders off, waiting for quiescence
            Disabled,   ///< router ports off, serving around it
            Reenabling, ///< rolling port re-enable, one per window
            Done,
        };

        /** One upstream feed into the target router, with the
         *  enable state it had before the drain touched it. */
        struct Feeder
        {
            bool fromRouter = false; ///< else from an endpoint
            std::uint32_t id = 0;    ///< RouterId or NodeId
            PortIndex port = 0;      ///< backward port / out group
            bool prevEnabled = true;
        };

        Phase phase = Phase::Pending;
        std::vector<Feeder> feeders;
        /** The target router's own enables at disable time. @{ */
        std::vector<std::uint8_t> savedForward;
        std::vector<std::uint8_t> savedBackward;
        /** @} */
        /** Next port to restore during Reenabling (counts down
         *  through backward then forward ports). */
        std::uint64_t reenableCursor = 0;
    };

    void maintenanceTick(Cycle now);
    bool routerDrained(RouterId r) const;
    void beginDrain(const MaintenanceOp &op, OpState &st);
    void disableRouter(const MaintenanceOp &op, OpState &st);
    bool stepReenable(const MaintenanceOp &op, OpState &st);

    std::string windowJson(Cycle now,
                           const MetricsRegistry &delta,
                           std::uint64_t inflight) const;

    std::vector<std::uint8_t> harnessBlob() const;
    std::string applyHarnessBlob(
        const std::vector<std::uint8_t> &blob);

    ServeConfig config_;
    CheckpointParticipants parts_;
    std::function<void(const std::string &)> emit_;
    std::function<void(Cycle)> heartbeat_;
    MetricsRegistry prev_;
    std::uint64_t windowIndex_ = 0;
    bool checkpointDone_ = false;
    /** Next multiple-of-checkpointEvery cycle a periodic checkpoint
     *  is due at (rides in the harness blob so a restored run keeps
     *  the schedule). */
    Cycle nextCheckpointAt_ = 0;
    std::unique_ptr<CheckpointStore> store_;
    std::string storeLoadError_;
    std::vector<OpState> ops_;
};

} // namespace metro

#endif // METRO_SERVE_SERVICE_HH
