#include "serve/store.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "serve/checkpoint.hh"

namespace metro
{

CheckpointStore::CheckpointStore(std::string base, unsigned keep)
    : base_(std::move(base)), keep_(keep == 0 ? 1 : keep)
{
    const auto slash = base_.find_last_of('/');
    dir_ = slash == std::string::npos ? std::string(".")
                                      : base_.substr(0, slash);
}

std::string
CheckpointStore::pathOf(const CheckpointStoreEntry &entry) const
{
    return dir_ + "/" + entry.file;
}

std::string
CheckpointStore::load()
{
    entries_.clear();
    std::ifstream in(manifestPath());
    if (!in)
        return ""; // no manifest yet: an empty store
    std::string line;
    if (!std::getline(in, line) ||
        line != "metro-checkpoint-manifest v1")
        return "unrecognized checkpoint manifest header: " +
               manifestPath();
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        CheckpointStoreEntry e;
        if (!(fields >> e.seq >> e.cycle >> e.file))
            return "malformed checkpoint manifest line: " + line;
        entries_.push_back(std::move(e));
    }
    // Newest first, whatever order the file had.
    std::sort(entries_.begin(), entries_.end(),
              [](const CheckpointStoreEntry &a,
                 const CheckpointStoreEntry &b) {
                  return a.seq > b.seq;
              });
    return "";
}

std::string
CheckpointStore::write(Cycle cycle,
                       const std::vector<std::uint8_t> &bytes)
{
    const std::uint64_t seq =
        entries_.empty() ? 0 : entries_.front().seq + 1;

    CheckpointStoreEntry e;
    e.seq = seq;
    e.cycle = cycle;
    {
        const auto slash = base_.find_last_of('/');
        const std::string stem = slash == std::string::npos
                                     ? base_
                                     : base_.substr(slash + 1);
        e.file = stem + "." + std::to_string(seq);
    }

    // Checkpoint file first (atomic, fsynced), manifest second:
    // a crash between the two leaves an orphan checkpoint file the
    // manifest does not name — harmless — never a manifest naming
    // a file that is not fully on disk.
    const std::string werr =
        writeCheckpointBytesDurably(pathOf(e), bytes);
    if (!werr.empty())
        return werr;

    entries_.insert(entries_.begin(), e);

    // Rotate: unlink everything beyond the retention depth.
    while (entries_.size() > keep_) {
        std::remove(pathOf(entries_.back()).c_str());
        entries_.pop_back();
    }

    std::string manifest = "metro-checkpoint-manifest v1\n";
    for (const auto &kept : entries_)
        manifest += std::to_string(kept.seq) + " " +
                    std::to_string(kept.cycle) + " " + kept.file +
                    "\n";
    std::vector<std::uint8_t> mbytes(manifest.begin(),
                                     manifest.end());
    return writeCheckpointBytesDurably(manifestPath(), mbytes);
}

std::string
CheckpointStore::read(const CheckpointStoreEntry &entry,
                      std::vector<std::uint8_t> &out) const
{
    std::ifstream in(pathOf(entry), std::ios::binary);
    if (!in)
        return "cannot open checkpoint file: " + pathOf(entry);
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    if (in.bad())
        return "read error on checkpoint file: " + pathOf(entry);
    return "";
}

} // namespace metro
