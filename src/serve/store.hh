/**
 * @file
 * Keep-last-N checkpoint retention with a manifest.
 *
 * A CheckpointStore manages a rotating family of checkpoint files
 * under one base path: checkpoints land at `<base>.<seq>` (seq
 * monotonically increasing across process restarts), and a text
 * manifest at `<base>.manifest` lists the retained entries newest
 * first. Every file — checkpoints and the manifest itself — is
 * written via the tmp+fsync+atomic-rename path, so a crash at any
 * point leaves the store readable: either the manifest names the
 * new checkpoint (which is fully on disk, having been renamed
 * first) or it still names only the old ones.
 *
 * Restore walks the manifest newest-first and takes the first
 * entry whose whole-file integrity footer verifies (see
 * verifyCheckpointFooter): a truncated or bit-flipped newest
 * checkpoint — e.g. from a crash that beat the fsync, or disk
 * corruption — falls back to the previous valid one instead of
 * killing the service.
 *
 * Manifest format (line-oriented, '#' comments ignored):
 *
 *     metro-checkpoint-manifest v1
 *     <seq> <cycle> <filename>
 *     ...
 *
 * Filenames are relative to the base path's directory.
 */

#ifndef METRO_SERVE_STORE_HH
#define METRO_SERVE_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace metro
{

/** One retained checkpoint, as recorded in the manifest. */
struct CheckpointStoreEntry
{
    std::uint64_t seq = 0;
    Cycle cycle = 0;
    std::string file; ///< path relative to the store directory
};

class CheckpointStore
{
  public:
    /** `base` is the path stem (files are `<base>.<seq>`, manifest
     *  `<base>.manifest`); `keep` is the retention depth (>= 1). */
    CheckpointStore(std::string base, unsigned keep);

    /** Read the manifest if one exists. A missing manifest is an
     *  empty store, not an error. Returns "" on success. */
    std::string load();

    /** Durably write a new checkpoint, rotate out entries beyond
     *  the retention depth, and rewrite the manifest. Returns "" on
     *  success. */
    std::string write(Cycle cycle,
                      const std::vector<std::uint8_t> &bytes);

    /** Retained entries, newest first. */
    const std::vector<CheckpointStoreEntry> &entries() const
    {
        return entries_;
    }

    /** Slurp one retained checkpoint's bytes. Returns "" on
     *  success. */
    std::string read(const CheckpointStoreEntry &entry,
                     std::vector<std::uint8_t> &out) const;

    /** Absolute-ish path of an entry's checkpoint file. */
    std::string pathOf(const CheckpointStoreEntry &entry) const;

    std::string manifestPath() const { return base_ + ".manifest"; }

  private:
    std::string base_;
    std::string dir_; ///< directory part of base_ ("." when bare)
    unsigned keep_;
    std::vector<CheckpointStoreEntry> entries_; ///< newest first
};

} // namespace metro

#endif // METRO_SERVE_STORE_HH
