/**
 * @file
 * Checkpoint/restore of full simulation state.
 *
 * Design (gem5-style): a checkpoint does NOT carry the topology.
 * The restoring process rebuilds the same instance from the same
 * options/seed (guarded by a config digest) and the checkpoint then
 * overwrites every piece of *dynamic* state — lane arena slots and
 * flags, router SoA port state, endpoint protocol/retry state, PRNG
 * streams, the message ledger, metric counters, scheduler
 * sleep/wake state, fault-campaign and diagnosis state — in the
 * fixed registration/creation order both processes share. Restore
 * then re-derives everything cached or thread-count-dependent (the
 * shard plan, per-shard awake counts, link wake counts, arena
 * sleeping-lane tallies, router availability snapshots), which is
 * what makes a restored run byte-identical to the uninterrupted one
 * at *any* engine thread count, including one different from the
 * saving process's.
 *
 * Format: little-endian binary, magic + version + config digest +
 * cycle, then tagged sections. Every variable-length read is
 * bounds-checked (see stateio.hh); a malformed file yields an error
 * string, never UB — the deserializer is a libFuzzer target.
 */

#ifndef METRO_SERVE_CHECKPOINT_HH
#define METRO_SERVE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace metro
{

class Network;
class ClosedLoopDriver;
class OpenLoopDriver;
class FaultInjector;
class FaultCampaign;
class DiagnosisEngine;

/** Checkpoint file format version (bump on layout changes).
 *  v2 added the whole-file integrity footer; v3 added the workload
 *  fields (trafficClass/rpcGroup/rpcFanout per ledger record, the
 *  open-loop driver's injection-process phase). */
constexpr std::uint32_t kCheckpointVersion = 3;

/** "MTR0" little-endian. */
constexpr std::uint32_t kCheckpointMagic = 0x3052544du;

/** "MTRF" little-endian — last 4 bytes of every checkpoint. */
constexpr std::uint32_t kCheckpointFooterMagic = 0x4652544du;

/** Bytes the integrity footer occupies at the end of a checkpoint:
 *  u64 payload length + u64 FNV-1a checksum + u32 footer magic. */
constexpr std::size_t kCheckpointFooterSize = 20;

/**
 * Everything a checkpoint covers. `net` is required; the extras are
 * optional but must match between save and restore (a checkpoint
 * taken with a campaign cannot restore into an instance without
 * one — presence is recorded per section). `harnessBlob` is an
 * opaque byte string the caller (the serve runner) round-trips for
 * its own state: window index, previous metrics snapshot,
 * maintenance phase machines.
 */
struct CheckpointParticipants
{
    Network *net = nullptr;
    std::vector<ClosedLoopDriver *> closedDrivers;
    std::vector<OpenLoopDriver *> openDrivers;
    FaultInjector *injector = nullptr;
    FaultCampaign *campaign = nullptr;
    DiagnosisEngine *diagnosis = nullptr;
};

/** FNV-1a over a canonical config string: save and restore must
 *  agree on it or restore refuses. Callers building the string must
 *  exclude engine-thread counts (restoring into a different thread
 *  count is supported and byte-identical). */
std::uint64_t checkpointDigest(const std::string &canonical);

/** FNV-1a over raw bytes (the footer checksum). */
std::uint64_t checkpointChecksum(const std::uint8_t *data,
                                 std::size_t size);

/** Append the whole-file integrity footer over everything already
 *  in `bytes`. saveCheckpointBytes does this itself; exposed so the
 *  fuzz harness and corpus tooling can build footer-valid inputs. */
void appendCheckpointFooter(std::vector<std::uint8_t> &bytes);

/**
 * Verify the trailing integrity footer: footer magic present, the
 * recorded payload length matches the file size, and the FNV-1a
 * checksum over the payload matches. Runs before ANY section
 * parsing, so a checkpoint truncated at any byte — or bit-flipped
 * anywhere — is rejected without touching the target instance.
 * Returns "" and fills `payload_size` (size minus footer) on
 * success, else an error message.
 */
std::string verifyCheckpointFooter(const std::uint8_t *data,
                                   std::size_t size,
                                   std::size_t *payload_size);

/**
 * Test/fault-injection hook for the durable write path: when
 * `max_bytes` is non-negative, the next writeCheckpointFile stops
 * after writing that many payload bytes to the temporary file and
 * either fails the write (abort_process == false: the partial temp
 * file is unlinked and an error returned, the final path is never
 * touched) or aborts the process mid-write (abort_process == true:
 * what the METRO_CRASH_AT_WRITE_BYTE environment variable arms —
 * the torture harness's crash-during-checkpoint injection). Pass -1
 * to clear. The hook is one-shot: it clears itself when it fires.
 */
void setCheckpointWriteFault(long long max_bytes,
                             bool abort_process);

/** Serialize to bytes. Flushes scheduler stats first (syncStats),
 *  so call only between cycles — in practice at a window boundary,
 *  where the uninterrupted run takes the same snapshot. */
std::vector<std::uint8_t>
saveCheckpointBytes(std::uint64_t config_digest,
                    const CheckpointParticipants &parts,
                    const std::vector<std::uint8_t> &harness_blob = {});

/**
 * Restore from bytes into a freshly built, finalized instance (same
 * topology/options/seed as the saver). Returns "" on success, else
 * an error message; on error the instance state is unspecified and
 * must be discarded. `harness_blob`, when non-null, receives the
 * saved harness section.
 */
std::string
restoreCheckpointBytes(const std::uint8_t *data, std::size_t size,
                       std::uint64_t config_digest,
                       const CheckpointParticipants &parts,
                       std::vector<std::uint8_t> *harness_blob =
                           nullptr);

/**
 * File wrappers. Return "" on success, else an error message.
 *
 * writeCheckpointFile is crash-safe: it writes to `<path>.tmp`,
 * fsyncs, and atomically renames onto `path` (then fsyncs the
 * containing directory), so no reader ever observes a partial
 * checkpoint at the final path — a crash mid-write leaves at worst
 * a stale `.tmp` and the previous checkpoint intact. On any write
 * failure the partial temporary file is unlinked.
 * @{
 */
std::string
writeCheckpointFile(const std::string &path,
                    std::uint64_t config_digest,
                    const CheckpointParticipants &parts,
                    const std::vector<std::uint8_t> &harness_blob =
                        {});

std::string
readCheckpointFile(const std::string &path,
                   std::uint64_t config_digest,
                   const CheckpointParticipants &parts,
                   std::vector<std::uint8_t> *harness_blob = nullptr);
/** @} */

/** The tmp+fsync+rename write path writeCheckpointFile uses, for
 *  already-serialized bytes (the retention store writes through
 *  this too). Returns "" on success. */
std::string
writeCheckpointBytesDurably(const std::string &path,
                            const std::vector<std::uint8_t> &bytes);

} // namespace metro

#endif // METRO_SERVE_CHECKPOINT_HH
