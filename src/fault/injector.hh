/**
 * @file
 * Fault injection for the fault-tolerance experiments.
 *
 * The paper's reliability story rests on three mechanisms the
 * simulator must be able to stress: stochastic path selection
 * routes *around* static faults; source-responsible retry recovers
 * from *dynamic* faults that appear mid-connection; and scan-based
 * port disable *masks* localized faults. The injector schedules
 * fault events at absolute cycles, so both static (cycle 0) and
 * dynamic (mid-run) regimes are expressible.
 */

#ifndef METRO_FAULT_INJECTOR_HH
#define METRO_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "network/multibutterfly.hh"
#include "network/network.hh"
#include "sim/component.hh"

namespace metro
{

/** Kinds of schedulable fault events. */
enum class FaultKind : std::uint8_t
{
    LinkDead,        ///< wire delivers nothing
    LinkCorrupt,     ///< wire flips payload bits
    LinkHeal,        ///< restore a link
    RouterDead,      ///< whole component stops responding
    RouterHeal,      ///< restore a router
    RouterMisroute,  ///< header decode scrambled (cascade tests)
    ForwardPortOff,  ///< scan-disable a forward port
    BackwardPortOff, ///< scan-disable a backward port
};

/** One scheduled fault event. */
struct FaultEvent
{
    Cycle at = 0;
    FaultKind kind = FaultKind::LinkDead;
    std::uint32_t target = 0; ///< LinkId or RouterId
    PortIndex port = kInvalidPort;
};

/**
 * Applies scheduled fault events to a network as simulation time
 * passes.
 */
class FaultInjector : public Component
{
  public:
    explicit FaultInjector(Network *net)
        : Component("faultInjector"), net_(net)
    {}

    /** Schedule one event. */
    void
    schedule(const FaultEvent &event)
    {
        events_.push_back(event);
    }

    /** Schedule many events. */
    void
    schedule(const std::vector<FaultEvent> &events)
    {
        for (const auto &e : events)
            schedule(e);
    }

    void tick(Cycle cycle) override;

    /** Events applied so far. */
    std::uint64_t applied() const { return applied_; }

  private:
    friend class CheckpointIO;

    void apply(const FaultEvent &event);

    Network *net_;
    std::vector<FaultEvent> events_;
    std::uint64_t applied_ = 0;
};

/**
 * Sample a set of router/link faults that provably leaves every
 * endpoint pair connected (checked with the network's structural
 * path oracle — Network::countUsablePaths), so degradation
 * experiments measure performance rather than partition. Works on
 * any topology whose builder installed a path oracle (multibutterfly
 * and fat tree both do); fails fast with a clear message on one that
 * did not. Resamples up to `max_tries` times.
 *
 * @param at  the cycle the sampled faults should strike
 */
std::vector<FaultEvent>
sampleSurvivableFaults(Network &net, unsigned router_faults,
                       unsigned link_faults, Cycle at,
                       std::uint64_t seed, unsigned max_tries = 64);

/** Back-compat shim: the spec is no longer consulted (the network's
 *  own path oracle is); kept so existing callers compile. */
std::vector<FaultEvent>
sampleSurvivableFaults(Network &net, const MultibutterflySpec &spec,
                       unsigned router_faults, unsigned link_faults,
                       Cycle at, std::uint64_t seed,
                       unsigned max_tries = 64);

} // namespace metro

#endif // METRO_FAULT_INJECTOR_HH
