/**
 * @file
 * Stochastic fault campaigns: sustained fault arrival processes.
 *
 * Static fault-event lists (injector.hh) answer "how does the
 * network perform with k faults"; the graceful-degradation story
 * needs the harder question — how it performs while faults keep
 * *arriving and healing*. A FaultCampaign drives the injector's
 * fault model as a stochastic process:
 *
 *  - Poisson link and router failures (per-cycle Bernoulli arrivals,
 *    which is the discrete-time Poisson process), each paired with
 *    an exponential-ish heal process over the currently-down set;
 *  - intermittent ("flaky") links that toggle dead/healthy on
 *    random half-periods — the transient faults the diagnosis
 *    layer's probe re-enables exist for;
 *  - correlated stage bursts: a random stage loses several links at
 *    once (a shared cable bundle or neighboring-chip failure).
 *
 * All randomness comes from one seeded generator owned by the
 * campaign. Experiments derive that seed from the sweep point's
 * derived seed, so a campaign is reproducible and thread-count
 * invariant, and never perturbs the traffic or router PRNG streams.
 *
 * The campaign only ever fails healthy targets it later heals
 * itself; it never touches faults injected by other actors (static
 * schedules, tests), so the two compose.
 */

#ifndef METRO_FAULT_CAMPAIGN_HH
#define METRO_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "sim/component.hh"

namespace metro
{

class Network;

/** Rates and shape of one stochastic fault campaign. */
struct CampaignConfig
{
    /** Per-cycle probability that one healthy link fails. */
    double linkFailRate = 0.0;

    /** Per-cycle probability that one campaign-downed link heals. */
    double linkHealRate = 0.0;

    /** Per-cycle probability that one alive router dies. */
    double routerFailRate = 0.0;

    /** Per-cycle probability that one campaign-dead router heals. */
    double routerHealRate = 0.0;

    /** Fraction of link failures that corrupt instead of sever. */
    double corruptFraction = 0.0;

    /** Number of intermittently failing links. */
    unsigned flakyLinks = 0;

    /** Mean half-period of a flaky link's toggle, in cycles. */
    unsigned flakyPeriod = 4096;

    /** Per-cycle probability of a correlated stage burst. */
    double burstRate = 0.0;

    /** Links killed (into one random stage) per burst. */
    unsigned burstSize = 2;

    /** Active window: [start, stop); stop = 0 means "forever". */
    Cycle start = 0;
    Cycle stop = 0;

    /** True when any stochastic process is configured. */
    bool
    active() const
    {
        return linkFailRate > 0 || routerFailRate > 0 ||
               flakyLinks > 0 || burstRate > 0;
    }
};

/**
 * The campaign driver. Construct after the network is built, add to
 * the engine; it draws its arrivals each tick. Counters land in the
 * network's metrics registry under "campaign.*".
 */
class FaultCampaign : public Component
{
  public:
    FaultCampaign(Network *net, const CampaignConfig &config,
                  std::uint64_t seed);

    void tick(Cycle cycle) override;

    /** Links currently failed by this campaign. */
    std::size_t downLinks() const { return downLinks_.size(); }

    /** Routers currently dead by this campaign's hand. */
    std::size_t deadRouters() const { return deadRouters_.size(); }

  private:
    friend class CheckpointIO;

    struct Flaky
    {
        LinkId link = kInvalidLink;
        Cycle nextToggle = 0;
        bool down = false;
    };

    void failLink(LinkId l, Cycle cycle);
    void healLink(std::size_t idx);
    LinkId pickHealthyLink();
    RouterId pickAliveRouter();

    Network *net_;
    CampaignConfig config_;
    Xoshiro256 rng_;

    /** Links into each stage, for correlated bursts. */
    std::vector<std::vector<LinkId>> linksIntoStage_;

    std::vector<LinkId> downLinks_;
    std::vector<RouterId> deadRouters_;
    std::vector<Flaky> flaky_;

    std::uint64_t *cLinkFailures_;
    std::uint64_t *cLinkHeals_;
    std::uint64_t *cRouterFailures_;
    std::uint64_t *cRouterHeals_;
    std::uint64_t *cFlakyToggles_;
    std::uint64_t *cBursts_;
};

} // namespace metro

#endif // METRO_FAULT_CAMPAIGN_HH
