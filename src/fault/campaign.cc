/**
 * @file
 * FaultCampaign implementation (process model in campaign.hh).
 */

#include "fault/campaign.hh"

#include "common/logging.hh"
#include "network/network.hh"

namespace metro
{

namespace
{

/** Bounded rejection sampling: draws per pick stay O(1) so a
 *  mostly-failed network cannot stall the simulation. */
constexpr unsigned kPickTries = 8;

} // namespace

FaultCampaign::FaultCampaign(Network *net,
                             const CampaignConfig &config,
                             std::uint64_t seed)
    : Component("faultCampaign"), net_(net), config_(config),
      rng_(seed ^ 0xCA4Fu)
{
    METRO_ASSERT(net_ != nullptr, "campaign needs a network");
    METRO_ASSERT(config_.corruptFraction >= 0.0 &&
                 config_.corruptFraction <= 1.0,
                 "corruptFraction out of [0,1]");

    // Links grouped by the stage of the router they feed, for
    // correlated bursts.
    linksIntoStage_.resize(net_->numStages());
    for (LinkId l = 0; l < net_->numLinks(); ++l) {
        const LinkEnd &b = net_->link(l).endB();
        if (b.kind != AttachKind::RouterForward)
            continue;
        const unsigned s = net_->router(b.id).stage();
        if (s < linksIntoStage_.size())
            linksIntoStage_[s].push_back(l);
    }

    // Pick the flaky set once, up front (distinct links).
    for (unsigned k = 0;
         k < config_.flakyLinks && flaky_.size() < net_->numLinks();
         ++k) {
        for (unsigned t = 0; t < kPickTries; ++t) {
            const LinkId cand = static_cast<LinkId>(
                rng_.below(net_->numLinks()));
            bool taken = false;
            for (const auto &f : flaky_)
                taken = taken || f.link == cand;
            if (taken)
                continue;
            Flaky f;
            f.link = cand;
            f.nextToggle = config_.start + 1 +
                           rng_.below(2ULL * config_.flakyPeriod + 1);
            flaky_.push_back(f);
            break;
        }
    }

    auto &m = net_->metrics();
    cLinkFailures_ = &m.counter("campaign.link_failures");
    cLinkHeals_ = &m.counter("campaign.link_heals");
    cRouterFailures_ = &m.counter("campaign.router_failures");
    cRouterHeals_ = &m.counter("campaign.router_heals");
    cFlakyToggles_ = &m.counter("campaign.flaky_toggles");
    cBursts_ = &m.counter("campaign.bursts");
}

LinkId
FaultCampaign::pickHealthyLink()
{
    for (unsigned t = 0; t < kPickTries; ++t) {
        const LinkId l =
            static_cast<LinkId>(rng_.below(net_->numLinks()));
        if (net_->link(l).fault() != LinkFault::None)
            continue;
        bool is_flaky = false;
        for (const auto &f : flaky_)
            is_flaky = is_flaky || f.link == l;
        if (is_flaky)
            continue; // the flaky process owns that wire
        return l;
    }
    return kInvalidLink;
}

RouterId
FaultCampaign::pickAliveRouter()
{
    for (unsigned t = 0; t < kPickTries; ++t) {
        const RouterId r =
            static_cast<RouterId>(rng_.below(net_->numRouters()));
        if (!net_->router(r).dead())
            return r;
    }
    return kInvalidRouter;
}

void
FaultCampaign::failLink(LinkId l, Cycle)
{
    const bool corrupt = rng_.chance(config_.corruptFraction);
    net_->link(l).setFault(corrupt ? LinkFault::Corrupt
                                   : LinkFault::Dead);
    downLinks_.push_back(l);
    ++*cLinkFailures_;
}

void
FaultCampaign::healLink(std::size_t idx)
{
    net_->link(downLinks_[idx]).setFault(LinkFault::None);
    downLinks_[idx] = downLinks_.back();
    downLinks_.pop_back();
    ++*cLinkHeals_;
}

void
FaultCampaign::tick(Cycle cycle)
{
    if (cycle < config_.start)
        return;
    if (config_.stop > 0 && cycle >= config_.stop) {
        // Campaign over: heal everything we broke, exactly once, so
        // experiments can drain on a healthy network.
        while (!downLinks_.empty())
            healLink(0);
        for (RouterId r : deadRouters_) {
            net_->router(r).setDead(false);
            ++*cRouterHeals_;
        }
        deadRouters_.clear();
        for (auto &f : flaky_) {
            if (f.down) {
                net_->link(f.link).setFault(LinkFault::None);
                f.down = false;
            }
            f.nextToggle = kNever;
        }
        return;
    }

    // Poisson link arrivals (fail before heal: a wire that fails
    // this cycle may not heal the same cycle).
    if (config_.linkFailRate > 0 &&
        rng_.chance(config_.linkFailRate)) {
        const LinkId l = pickHealthyLink();
        if (l != kInvalidLink)
            failLink(l, cycle);
    }
    if (config_.linkHealRate > 0 && !downLinks_.empty() &&
        rng_.chance(config_.linkHealRate))
        healLink(rng_.below(downLinks_.size()));

    // Poisson router arrivals.
    if (config_.routerFailRate > 0 &&
        rng_.chance(config_.routerFailRate)) {
        const RouterId r = pickAliveRouter();
        if (r != kInvalidRouter) {
            net_->router(r).setDead(true);
            deadRouters_.push_back(r);
            ++*cRouterFailures_;
        }
    }
    if (config_.routerHealRate > 0 && !deadRouters_.empty() &&
        rng_.chance(config_.routerHealRate)) {
        const std::size_t idx = rng_.below(deadRouters_.size());
        net_->router(deadRouters_[idx]).setDead(false);
        deadRouters_[idx] = deadRouters_.back();
        deadRouters_.pop_back();
        ++*cRouterHeals_;
    }

    // Intermittent links.
    for (auto &f : flaky_) {
        if (cycle < f.nextToggle)
            continue;
        f.down = !f.down;
        net_->link(f.link).setFault(f.down ? LinkFault::Dead
                                           : LinkFault::None);
        f.nextToggle = cycle + 1 +
                       rng_.below(2ULL * config_.flakyPeriod + 1);
        ++*cFlakyToggles_;
    }

    // Correlated stage bursts.
    if (config_.burstRate > 0 && !linksIntoStage_.empty() &&
        rng_.chance(config_.burstRate)) {
        const auto &pool =
            linksIntoStage_[rng_.below(linksIntoStage_.size())];
        unsigned killed = 0;
        for (unsigned t = 0;
             t < kPickTries * config_.burstSize && !pool.empty() &&
             killed < config_.burstSize;
             ++t) {
            const LinkId l = pool[rng_.below(pool.size())];
            if (net_->link(l).fault() != LinkFault::None)
                continue;
            bool is_flaky = false;
            for (const auto &f : flaky_)
                is_flaky = is_flaky || f.link == l;
            if (is_flaky)
                continue;
            failLink(l, cycle);
            ++killed;
        }
        if (killed > 0)
            ++*cBursts_;
    }
}

} // namespace metro
