#include "fault/injector.hh"

#include <algorithm>

#include "network/analysis.hh"

namespace metro
{

void
FaultInjector::tick(Cycle cycle)
{
    for (auto &event : events_) {
        if (event.at == cycle) {
            apply(event);
            ++applied_;
        }
    }
}

void
FaultInjector::apply(const FaultEvent &event)
{
    // Every mutator below participates in the engine's wakeup
    // protocol: Link::setFault reactivates a fast-pathed link (so
    // the death census in Link::advance() runs and charges draining
    // words to words.discarded.wire) and wakes both end components;
    // the router hooks wake a sleeping router *before* mutating it.
    // Faults therefore land identically whether or not the target
    // was quiescent when the event fired.
    switch (event.kind) {
      case FaultKind::LinkDead:
        net_->link(event.target).setFault(LinkFault::Dead);
        break;
      case FaultKind::LinkCorrupt:
        net_->link(event.target).setFault(LinkFault::Corrupt);
        break;
      case FaultKind::LinkHeal:
        net_->link(event.target).setFault(LinkFault::None);
        break;
      case FaultKind::RouterDead:
        net_->router(event.target).setDead(true);
        break;
      case FaultKind::RouterHeal:
        net_->router(event.target).setDead(false);
        break;
      case FaultKind::RouterMisroute:
        net_->router(event.target).setMisroute(true);
        break;
      case FaultKind::ForwardPortOff:
        net_->router(event.target)
            .setForwardEnabled(event.port, false);
        break;
      case FaultKind::BackwardPortOff:
        net_->router(event.target)
            .setBackwardEnabled(event.port, false);
        break;
    }
}

std::vector<FaultEvent>
sampleSurvivableFaults(Network &net, const MultibutterflySpec &spec,
                       unsigned router_faults, unsigned link_faults,
                       Cycle at, std::uint64_t seed,
                       unsigned max_tries)
{
    (void)spec; // the network's own path oracle is authoritative
    return sampleSurvivableFaults(net, router_faults, link_faults,
                                  at, seed, max_tries);
}

std::vector<FaultEvent>
sampleSurvivableFaults(Network &net, unsigned router_faults,
                       unsigned link_faults, Cycle at,
                       std::uint64_t seed, unsigned max_tries)
{
    METRO_ASSERT(net.hasPathOracle(),
                 "survivable fault sampling needs a topology with a "
                 "structural path oracle (multibutterfly or fat "
                 "tree); this network installed none");
    Xoshiro256 rng(seed);

    for (unsigned attempt = 0; attempt < max_tries; ++attempt) {
        // Draw a candidate set.
        std::vector<FaultEvent> events;
        std::vector<RouterId> routers(net.numRouters());
        for (RouterId r = 0; r < routers.size(); ++r)
            routers[r] = r;
        for (std::size_t k = routers.size(); k > 1; --k)
            std::swap(routers[k - 1], routers[rng.below(k)]);
        for (unsigned k = 0;
             k < router_faults && k < routers.size(); ++k)
            events.push_back({at, FaultKind::RouterDead, routers[k],
                              kInvalidPort});

        std::vector<LinkId> links(net.numLinks());
        for (LinkId l = 0; l < links.size(); ++l)
            links[l] = l;
        for (std::size_t k = links.size(); k > 1; --k)
            std::swap(links[k - 1], links[rng.below(k)]);
        for (unsigned k = 0; k < link_faults && k < links.size(); ++k)
            events.push_back({at, FaultKind::LinkDead, links[k],
                              kInvalidPort});

        // Trial-apply, check connectivity, revert.
        for (const auto &e : events) {
            if (e.kind == FaultKind::RouterDead)
                net.router(e.target).setDead(true);
            else
                net.link(e.target).setFault(LinkFault::Dead);
        }
        const bool ok = allPairsConnected(net);
        for (const auto &e : events) {
            if (e.kind == FaultKind::RouterDead)
                net.router(e.target).setDead(false);
            else
                net.link(e.target).setFault(LinkFault::None);
        }
        if (ok)
            return events;
    }
    METRO_FATAL("could not sample a survivable fault set "
                "(%u routers, %u links)", router_faults, link_faults);
}

} // namespace metro
