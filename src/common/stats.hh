/**
 * @file
 * Lightweight statistics primitives for simulation runs.
 *
 * These back the aggregate-performance experiments (Figure 3 and the
 * fault-degradation sweeps): latency histograms, retry counts, port
 * utilization, offered vs. delivered load.
 */

#ifndef METRO_COMMON_STATS_HH
#define METRO_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace metro
{

/**
 * Running scalar summary: count, mean, min, max, variance
 * (Welford's online algorithm).
 */
class Summary
{
  public:
    /** Record one sample. */
    void
    sample(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sample variance (0 with fewer than two samples). */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Forget all samples. */
    void
    reset()
    {
        count_ = 0;
        mean_ = 0.0;
        m2_ = 0.0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram over non-negative integer samples that also retains the
 * raw samples for exact percentile queries. Simulation runs are
 * short enough (≤ millions of messages) that retaining samples is
 * cheap and keeps percentiles exact.
 */
class Histogram
{
  public:
    /** Record one sample. */
    void
    sample(std::uint64_t x)
    {
        samples_.push_back(x);
        summary_.sample(static_cast<double>(x));
        sorted_ = false;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return summary_.count(); }

    /** Arithmetic mean. */
    double mean() const { return summary_.mean(); }

    /** Smallest sample. */
    double min() const { return summary_.min(); }

    /** Largest sample. */
    double max() const { return summary_.max(); }

    /** Sample standard deviation. */
    double stddev() const { return summary_.stddev(); }

    /**
     * Exact percentile by nearest-rank. @param p in [0, 100].
     * Returns 0 when empty.
     */
    std::uint64_t
    percentile(double p) const
    {
        if (samples_.empty())
            return 0;
        METRO_ASSERT(p >= 0.0 && p <= 100.0,
                     "percentile out of range: %f", p);
        sortIfNeeded();
        const auto n = samples_.size();
        auto rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(n)));
        if (rank == 0)
            rank = 1;
        return samples_[rank - 1];
    }

    /** Median (50th percentile). */
    std::uint64_t median() const { return percentile(50.0); }

    /** Forget all samples. */
    void
    reset()
    {
        samples_.clear();
        summary_.reset();
        sorted_ = false;
    }

    /** The retained raw samples (unsorted order not guaranteed). */
    const std::vector<std::uint64_t> &samples() const { return samples_; }

  private:
    void
    sortIfNeeded() const
    {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
    }

    mutable std::vector<std::uint64_t> samples_;
    mutable bool sorted_ = false;
    Summary summary_;
};

/**
 * A named bag of counters, for ad-hoc event counting (blocks per
 * stage, drops, retries, checksum failures...).
 *
 * Hot paths intern a slot() once (constructor time) and bump the
 * returned reference directly, skipping the per-event string
 * construction and map lookup of add(). Interned slots start at
 * zero and stay invisible to all() until first incremented, so
 * interning never changes the observable counter set.
 */
class CounterSet
{
  public:
    /** Add `delta` to the counter called `name`. */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /**
     * A stable reference to the counter called `name` (map nodes
     * never move). Creates the counter at zero; zero-valued
     * counters are omitted from all(), so merely interning a slot
     * is unobservable.
     */
    std::uint64_t &slot(const std::string &name)
    {
        return counters_[name];
    }

    /** Current value of `name` (0 if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** All counters that ever fired, sorted by name. Zero-valued
     *  entries (interned-but-unused slots) are omitted — identical
     *  to the set add() alone would have produced. */
    std::map<std::string, std::uint64_t>
    all() const
    {
        std::map<std::string, std::uint64_t> out;
        for (const auto &[name, value] : counters_) {
            if (value != 0)
                out.emplace(name, value);
        }
        return out;
    }

    /** Zero every counter (interned slot references stay valid). */
    void
    reset()
    {
        for (auto &[name, value] : counters_)
            value = 0;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace metro

#endif // METRO_COMMON_STATS_HH
