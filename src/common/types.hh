/**
 * @file
 * Fundamental scalar types shared across the METRO simulator.
 */

#ifndef METRO_COMMON_TYPES_HH
#define METRO_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace metro
{

/** Simulation time, in router clock cycles. */
using Cycle = std::uint64_t;

/** A data word on a channel. Wide enough for any practical w. */
using Word = std::uint64_t;

/** Identifies a network endpoint (processor node / hub port). */
using NodeId = std::uint32_t;

/** Index of a port on a router (forward or backward port space). */
using PortIndex = std::uint32_t;

/** Identifies a router within a network. */
using RouterId = std::uint32_t;

/** Identifies a link within a network. */
using LinkId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode =
    std::numeric_limits<NodeId>::max();

/** Sentinel for "no router". */
inline constexpr RouterId kInvalidRouter =
    std::numeric_limits<RouterId>::max();

/** Sentinel for "no port". */
inline constexpr PortIndex kInvalidPort =
    std::numeric_limits<PortIndex>::max();

/** Sentinel for "no link". */
inline constexpr LinkId kInvalidLink =
    std::numeric_limits<LinkId>::max();

/** Sentinel for "never" in cycle arithmetic. */
inline constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

} // namespace metro

#endif // METRO_COMMON_TYPES_HH
