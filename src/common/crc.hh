/**
 * @file
 * CRC checksums used for end-to-end and per-router stream integrity.
 *
 * The paper relies on checksums twice: the source appends a checksum
 * to each message so the destination can verify integrity
 * end-to-end, and every router accumulates a checksum of the words
 * it forwards, injecting it into the return stream on connection
 * reversal so the source can localize where corruption entered the
 * path (Section 4, "Overview"; Section 5.1, "Connection Reversal").
 */

#ifndef METRO_COMMON_CRC_HH
#define METRO_COMMON_CRC_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace metro
{

/**
 * Incremental CRC-16/CCITT accumulator over channel words.
 *
 * Each w-bit channel word is folded in byte-by-byte (words narrower
 * than 8 bits are folded as one byte). The specific polynomial is a
 * simulator choice; the paper does not fix one.
 */
class Crc16
{
  public:
    /** Reset the accumulator to its initial value. */
    void reset() { crc_ = 0xffff; }

    /** Fold one channel word (low `width` bits) into the CRC. */
    void
    update(Word word, unsigned width)
    {
        unsigned bytes = (width + 7) / 8;
        if (bytes == 0)
            bytes = 1;
        for (unsigned b = 0; b < bytes; ++b)
            updateByte(static_cast<std::uint8_t>(word >> (8 * b)));
    }

    /** The current CRC value. */
    std::uint16_t value() const { return crc_; }

    /** Overwrite the accumulator (checkpoint restore). */
    void setValue(std::uint16_t value) { crc_ = value; }

  private:
    /** Per-byte transition table (the bit-serial fold of each byte
     *  value, precomputed): checksums land on every forwarded word
     *  of every hop, so the fold is a single table step. Values are
     *  identical to the bit loop it replaces. */
    static constexpr std::array<std::uint16_t, 256>
    makeTable()
    {
        std::array<std::uint16_t, 256> t{};
        for (unsigned i = 0; i < 256; ++i) {
            auto c = static_cast<std::uint16_t>(i << 8);
            for (int b = 0; b < 8; ++b) {
                if (c & 0x8000)
                    c = static_cast<std::uint16_t>((c << 1) ^
                                                   0x1021);
                else
                    c = static_cast<std::uint16_t>(c << 1);
            }
            t[i] = c;
        }
        return t;
    }

    void
    updateByte(std::uint8_t byte)
    {
        static constexpr std::array<std::uint16_t, 256> kTable =
            makeTable();
        crc_ = static_cast<std::uint16_t>(
            (crc_ << 8) ^
            kTable[((crc_ >> 8) ^ byte) & 0xff]);
    }

    std::uint16_t crc_ = 0xffff;
};

} // namespace metro

#endif // METRO_COMMON_CRC_HH
