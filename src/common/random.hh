/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator — router output
 * selection, traffic destinations, fault schedules — draws from a
 * seeded Xoshiro256** stream so that a given seed reproduces a
 * simulation bit-for-bit. The paper's routers consume external
 * "random input" bit streams (parameter ri in Table 1) so that
 * width-cascaded routers can share randomness; RandomSource models
 * exactly such a stream and can be shared by reference across a
 * cascade group.
 */

#ifndef METRO_COMMON_RANDOM_HH
#define METRO_COMMON_RANDOM_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace metro
{

/**
 * Xoshiro256** generator (Blackman & Vigna). Small, fast, and good
 * enough statistically for simulation workloads; chosen over
 * std::mt19937 for speed and a compact, explicitly-specified state
 * that makes cross-platform determinism trivial.
 */
class Xoshiro256
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 expansion. */
    explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        reseed(seed);
    }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 to fill the state; avoids the all-zero state.
        std::uint64_t x = seed;
        for (auto &s : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly random bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        METRO_ASSERT(bound > 0, "below() requires bound > 0");
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        METRO_ASSERT(lo <= hi, "range() requires lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** A single random bit. */
    bool bit() { return (next() & 1) != 0; }

    /**
     * Raw generator state, for checkpoint/restore: the four state
     * words fully determine the stream, so a save/restore pair
     * resumes the draw sequence exactly where it left off. @{
     */
    void
    stateWords(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }

    void
    setStateWords(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }
    /** @} */

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * A shared random bit stream, modelling the external random inputs
 * each METRO router receives (Table 1, parameter ri). Cascaded
 * routers hold a pointer to the same RandomSource so their
 * allocation decisions coincide (Section 5.1, "shared randomness").
 *
 * The word for a cycle is a pure function of (seed, cycle): all
 * consumers of the same source observe identical bits in the same
 * cycle regardless of query order, which is what makes cascaded
 * routers allocate identically.
 */
class RandomSource
{
  public:
    explicit RandomSource(std::uint64_t seed) : seed_(seed) {}

    /** The 64-bit random word associated with a simulation cycle. */
    std::uint64_t
    wordForCycle(Cycle cycle) const
    {
        // SplitMix64-style finalizer over (seed, cycle).
        std::uint64_t z =
            seed_ ^ (cycle + 0x9e3779b97f4a7c15ULL +
                     (seed_ << 6) + (seed_ >> 2));
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** The seed this stream was constructed with. */
    std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_;
};

} // namespace metro

#endif // METRO_COMMON_RANDOM_HH
