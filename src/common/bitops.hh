/**
 * @file
 * Small bit-manipulation helpers used across the router and network
 * builders (METRO constrains several architectural parameters to
 * powers of two — Table 1).
 */

#ifndef METRO_COMMON_BITOPS_HH
#define METRO_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace metro
{

/** True when x is a (positive) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)). @pre x > 0. */
constexpr unsigned
log2Floor(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** ceil(log2(x)). @pre x > 0. */
constexpr unsigned
log2Ceil(std::uint64_t x)
{
    return x <= 1 ? 0 : log2Floor(x - 1) + 1;
}

/** ceil(a / b). @pre b > 0. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Mask of the low n bits (n ≤ 64). */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

} // namespace metro

#endif // METRO_COMMON_BITOPS_HH
