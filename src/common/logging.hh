/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant of the simulator was violated
 *            (a simulator bug); aborts so a debugger can attach.
 * fatal()  — the user supplied an impossible configuration; exits
 *            with an error code.
 * warn()   — something looks suspicious but simulation continues.
 * inform() — plain status output.
 */

#ifndef METRO_COMMON_LOGGING_HH
#define METRO_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace metro
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort on a violated simulator invariant (simulator bug). */
#define METRO_PANIC(...)                                                \
    ::metro::detail::panicImpl(__FILE__, __LINE__,                      \
                               ::metro::detail::vformat(__VA_ARGS__))

/** Exit on an impossible user configuration (user error). */
#define METRO_FATAL(...)                                                \
    ::metro::detail::fatalImpl(__FILE__, __LINE__,                      \
                               ::metro::detail::vformat(__VA_ARGS__))

/** Non-fatal warning. */
#define METRO_WARN(...)                                                 \
    ::metro::detail::warnImpl(::metro::detail::vformat(__VA_ARGS__))

/** Status message. */
#define METRO_INFORM(...)                                               \
    ::metro::detail::informImpl(::metro::detail::vformat(__VA_ARGS__))

/** Assert a simulator invariant; compiled in all build types. */
#define METRO_ASSERT(cond, ...)                                         \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::metro::detail::panicImpl(                                 \
                __FILE__, __LINE__,                                     \
                std::string("assertion failed: " #cond " — ") +         \
                    ::metro::detail::vformat(__VA_ARGS__));             \
        }                                                               \
    } while (0)

} // namespace metro

#endif // METRO_COMMON_LOGGING_HH
