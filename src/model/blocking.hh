/**
 * @file
 * Analytic blocking model for dilated multistage networks.
 *
 * The paper's aggregate performance rests on earlier analyses of
 * multipath MINs (its refs [2] [3], Chong et al.). This module
 * implements the standard time-slot approximation for a
 * circuit-switched dilated stage:
 *
 *   Each of a router's i inputs independently carries a connection
 *   attempt with probability q, uniformly spread over the r logical
 *   directions. The number of requests X for one direction is
 *   Binomial(i, q/r); with d equivalent outputs, min(X, d) are
 *   granted, so a direction's expected carried load is E[min(X,d)]
 *   and the per-attempt acceptance is E[min(X,d)] / E[X].
 *
 * Chaining stages (output load of stage s, normalized per output
 * port, is the input load of stage s+1) yields the network
 * acceptance probability A and the expected connection attempts
 * 1/A — the quantity the simulator measures as attempts-per-message
 * under load. The model ignores holding-time correlation and
 * retry correlation, so it is an approximation the bench compares
 * against simulation (it tracks the shape and the knee).
 */

#ifndef METRO_MODEL_BLOCKING_HH
#define METRO_MODEL_BLOCKING_HH

#include <vector>

#include "network/multibutterfly.hh"

namespace metro
{

/** Per-stage result of the blocking analysis. */
struct StageBlocking
{
    /** Probability an input port carries an attempt this slot. */
    double inputLoad = 0.0;

    /** Probability an output port is carrying traffic. */
    double outputLoad = 0.0;

    /** Per-attempt acceptance probability at this stage. */
    double acceptance = 1.0;
};

/**
 * E[min(X, d)] for X ~ Binomial(n, p): the expected connections a
 * direction with d equivalent ports carries.
 */
double expectedMinBinomial(unsigned n, double p, unsigned d);

/**
 * Chain the per-stage analysis through a multibutterfly at the
 * given per-endpoint-port injection probability.
 */
std::vector<StageBlocking>
analyzeBlocking(const MultibutterflySpec &spec, double injection);

/** Product of per-stage acceptances: end-to-end first-try success. */
double networkAcceptance(const MultibutterflySpec &spec,
                         double injection);

/** 1 / acceptance: expected attempts per message. */
double expectedAttempts(const MultibutterflySpec &spec,
                        double injection);

} // namespace metro

#endif // METRO_MODEL_BLOCKING_HH
