#include "model/latency.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace metro
{

DerivedLatency
deriveLatency(const ImplementationSpec &spec)
{
    DerivedLatency d;
    d.vtd = static_cast<unsigned>(
        std::ceil((spec.tIo + d.tWire) / spec.tClk));
    d.tOnChip = spec.tClk * spec.dp;
    d.tStg = d.tOnChip + d.vtd * spec.tClk;
    d.tBitPerBit = spec.tClk / (spec.w * spec.cascade);

    if (spec.hw > 0) {
        d.hbits = spec.hw * spec.w * spec.cascade * spec.stages();
    } else {
        unsigned route_bits = 0;
        for (unsigned r : spec.radices)
            route_bits += log2Ceil(r);
        d.hbits = static_cast<unsigned>(
                      ceilDiv(route_bits, spec.w)) *
                  spec.w * spec.cascade;
    }

    d.t2032 = spec.stages() * d.tStg +
              (20.0 * 8.0 + d.hbits) * d.tBitPerBit;
    return d;
}

std::vector<Table3Row>
table3Rows()
{
    // The 32-node application networks: i = o = 4 routers use the
    // Figure-1-style 4-stage 2x2x2x4 construction; i = o = 8
    // routers use the 2-stage 4x8 construction.
    const std::vector<unsigned> four_stage = {2, 2, 2, 4};
    const std::vector<unsigned> two_stage = {4, 8};

    std::vector<Table3Row> rows;

    auto add = [&rows](const std::string &name,
                       const std::string &tech, double t_clk,
                       double t_io, unsigned dp, unsigned hw,
                       unsigned w, unsigned c,
                       const std::vector<unsigned> &radices,
                       double pub_t2032, double pub_tstg) {
        Table3Row row;
        row.spec.name = name;
        row.spec.technology = tech;
        row.spec.tClk = t_clk;
        row.spec.tIo = t_io;
        row.spec.dp = dp;
        row.spec.hw = hw;
        row.spec.w = w;
        row.spec.cascade = c;
        row.spec.radices = radices;
        row.publishedT2032 = pub_t2032;
        row.publishedTStg = pub_tstg;
        rows.push_back(row);
    };

    const std::string ga = "1.2u Gate Array";
    add("METROJR-ORBIT", ga, 25, 10, 1, 0, 4, 1, four_stage, 1250, 50);
    add("METROJR-ORBIT 2-cascade", ga, 25, 10, 1, 0, 4, 2, four_stage,
        750, 50);
    add("METROJR-ORBIT 4-cascade", ga, 25, 10, 1, 0, 4, 4, four_stage,
        500, 50);
    add("METROJR w=8", ga, 25, 10, 1, 0, 8, 1, four_stage, 725, 50);

    const std::string sc = "0.8u Std. Cell";
    add("METROJR", sc, 10, 5, 1, 0, 4, 1, four_stage, 500, 20);
    add("METROJR 2-cascade", sc, 10, 5, 1, 0, 4, 2, four_stage, 300,
        20);
    add("METROJR 4-cascade", sc, 10, 5, 1, 0, 4, 4, four_stage, 200,
        20);
    add("METRO i=o=8 w=4", sc, 10, 5, 1, 0, 4, 1, two_stage, 460, 20);

    const std::string fc = "0.8u Full Custom";
    add("METROJR", fc, 5, 3, 1, 0, 4, 1, four_stage, 270, 15);
    add("METRO i=o=8 w=4", fc, 5, 3, 1, 0, 4, 1, two_stage, 240, 15);
    add("METROJR dp=2", fc, 2, 3, 2, 0, 4, 1, four_stage, 124, 10);
    add("METROJR hw=1", fc, 2, 3, 1, 1, 4, 1, four_stage, 120, 8);
    add("METROJR hw=1 2-cascade", fc, 2, 3, 1, 1, 4, 2, four_stage, 80,
        8);
    add("METROJR hw=1 w=8", fc, 2, 3, 1, 1, 8, 1, four_stage, 80, 8);
    add("METRO i=o=8 hw=2 w=4", fc, 2, 3, 1, 2, 4, 1, two_stage, 104,
        8);
    add("METRO i=o=8 hw=2 4-cascade", fc, 2, 3, 1, 2, 4, 4, two_stage,
        44, 8);

    return rows;
}

ContemporaryEstimate
estimateContemporary(const ContemporarySpec &spec)
{
    // Same accounting as t_20,32: switching latency across the
    // hops, plus 20 bytes serialized at the channel's bit rate.
    const double per_bit = spec.tBitNs / spec.tBitBits;
    const double serialize = 20.0 * 8.0 * per_bit;
    ContemporaryEstimate est;
    est.minNs = spec.hopsMin * spec.latencyMinNs + serialize;
    est.maxNs = spec.hopsMax * spec.latencyMaxNs + serialize;
    return est;
}

std::vector<ContemporarySpec>
table5Rows()
{
    std::vector<ContemporarySpec> rows;

    auto add = [&rows](const std::string &name, const std::string &note,
                       double lat_min, double lat_max, unsigned h_min,
                       unsigned h_max, double t_bit, unsigned bits,
                       double pub_min, double pub_max) {
        ContemporarySpec s;
        s.name = name;
        s.router_note = note;
        s.latencyMinNs = lat_min;
        s.latencyMaxNs = lat_max;
        s.hopsMin = h_min;
        s.hopsMax = h_max;
        s.tBitNs = t_bit;
        s.tBitBits = bits;
        s.publishedMinNs = pub_min;
        s.publishedMaxNs = pub_max;
        rows.push_back(s);
    };

    // Hop counts: a 32-node configuration of each topology. The
    // crossbar hubs and the ring cross the fabric in one switch
    // transit; the CM-5 4-ary fat-tree takes from 2 transits
    // (nearest leaf pair) up to ~10 including the up/down levels
    // and interface transits the paper charges it; the J-Machine
    // 3D mesh (4x4x2) and the MRC 2D mesh span a few hops each
    // way; RACE crosses its crossbar tree in ~4 transits.
    add("DEC/GIGAswitch", "<15us / 22-port xbar", 15000, 15000, 1, 1,
        10, 1, 16000, 16000);
    add("KSR/KSR-1", "3us / 32-node ring", 3000, 3000, 1, 1, 30, 8,
        3500, 3500);
    add("TMC/CM-5 Router", "250ns / 4-ary switch", 250, 250, 2, 10,
        25, 4, 1500, 3500);
    add("INMOS/C104", "<1us / 32-port xbar", 1000, 1000, 1, 1, 10, 1,
        2500, 2500);
    add("MIT/J-Machine", "60ns / 3D router", 60, 60, 1, 7, 30, 8, 660,
        1020);
    add("Caltech/MRC", "50-100ns / 2D router", 50, 100, 2, 6, 11, 8,
        300, 800);
    add("Mercury/RACE", "100ns / 6-port xbar", 100, 100, 4, 4, 5, 8,
        500, 500);

    return rows;
}

double
parallelismLimitedOpsPerCycle(double p, double l)
{
    METRO_ASSERT(l >= 0.0, "latency must be non-negative");
    return p / (l + 1.0);
}

} // namespace metro
