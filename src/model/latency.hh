/**
 * @file
 * The paper's analytic latency model (Tables 3 and 4) and the
 * contemporary-router comparison (Table 5).
 *
 * Table 4 defines, for a METRO implementation with clock period
 * t_clk, i/o pad latency t_io, dp pipeline stages, hw consumed
 * header words, channel width w, cascade factor c and a `stages`-
 * stage 32-node multibutterfly:
 *
 *   t_wire    = 3 ns                       (assumed wire delay)
 *   vtd       = ceil((t_io + t_wire) / t_clk)
 *   t_on_chip = t_clk * dp
 *   t_stg     = t_on_chip + vtd * t_clk
 *   hbits     = hw > 0 : hw * w * c * stages
 *               hw = 0 : ceil(sum_s log2(r_s) / w) * w * c
 *   t_20,32   = stages * t_stg + (20*8 + hbits) * t_bit
 *
 * where t_bit = t_clk / (w * c) is the per-bit serialization time
 * of the (possibly cascaded) channel. These formulas reproduce
 * every t_20,32 entry of Table 3 exactly; the model-validation
 * bench checks that, and cross-checks the cycle counts against the
 * cycle-accurate simulator.
 */

#ifndef METRO_MODEL_LATENCY_HH
#define METRO_MODEL_LATENCY_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace metro
{

/** Input parameters of one implementation row (Table 3). */
struct ImplementationSpec
{
    std::string name;
    std::string technology;

    /** Clock period, ns. */
    double tClk = 25.0;

    /** I/O pad latency, ns. */
    double tIo = 10.0;

    /** Internal data pipeline stages. */
    unsigned dp = 1;

    /** Header words consumed per router. */
    unsigned hw = 0;

    /** Channel width per component, bits. */
    unsigned w = 4;

    /** Width-cascade factor. */
    unsigned cascade = 1;

    /** Stage radices of the 32-node application network. */
    std::vector<unsigned> radices = {2, 2, 2, 4};

    /** Stages in that network. */
    unsigned stages() const
    {
        return static_cast<unsigned>(radices.size());
    }
};

/** Quantities derived by the Table 4 equations. */
struct DerivedLatency
{
    double tWire = 3.0;     ///< assumed wire delay, ns
    unsigned vtd = 0;       ///< interconnect delay in clocks
    double tOnChip = 0.0;   ///< ns through the chip
    double tStg = 0.0;      ///< chip-to-chip latency, ns
    double tBitPerBit = 0.0;///< ns per bit of channel bandwidth
    unsigned hbits = 0;     ///< routing bits required
    double t2032 = 0.0;     ///< 20-byte, 32-node delivery, ns
};

/** Evaluate the Table 4 equations for one implementation. */
DerivedLatency deriveLatency(const ImplementationSpec &spec);

/** Every row of paper Table 3, with its published t_20,32 (ns). */
struct Table3Row
{
    ImplementationSpec spec;
    double publishedT2032;  ///< ns, as printed in the paper
    double publishedTStg;   ///< ns, as printed in the paper
};

/** The fourteen implementation rows of Table 3. */
std::vector<Table3Row> table3Rows();

/** One contemporary router of Table 5. */
struct ContemporarySpec
{
    std::string name;
    std::string router_note;

    /** Per-switch/hop latency range, ns. @{ */
    double latencyMinNs = 0.0;
    double latencyMaxNs = 0.0;
    /** @} */

    /** Hop count range across a 32-node configuration. @{ */
    unsigned hopsMin = 1;
    unsigned hopsMax = 1;
    /** @} */

    /** Channel serialization: ns per `bits` bits. @{ */
    double tBitNs = 10.0;
    unsigned tBitBits = 1;
    /** @} */

    /** Published t_20,32 range (ns). @{ */
    double publishedMinNs = 0.0;
    double publishedMaxNs = 0.0;
    /** @} */
};

/** Estimated unloaded 20-byte, 32-node delivery time range (ns). */
struct ContemporaryEstimate
{
    double minNs = 0.0;
    double maxNs = 0.0;
};

/** Evaluate the Table 5 estimate for one contemporary router. */
ContemporaryEstimate estimateContemporary(const ContemporarySpec &spec);

/** The seven contemporary routers of Table 5. */
std::vector<ContemporarySpec> table5Rows();

/**
 * Section 2's parallelism-limited speedup model: an application
 * with p parallel operations per cycle on a machine with
 * cross-network latency l executes p / (l + 1) operations per
 * cycle on average.
 */
double parallelismLimitedOpsPerCycle(double p, double l);

} // namespace metro

#endif // METRO_MODEL_LATENCY_HH
