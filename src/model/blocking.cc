#include "model/blocking.hh"

#include <cmath>

#include "common/logging.hh"

namespace metro
{

namespace
{

/** Binomial pmf via a numerically tame running product. */
double
binomialPmf(unsigned n, double p, unsigned k)
{
    if (p <= 0.0)
        return k == 0 ? 1.0 : 0.0;
    if (p >= 1.0)
        return k == n ? 1.0 : 0.0;
    // C(n, k) p^k (1-p)^(n-k) built factor by factor.
    double result = 1.0;
    for (unsigned j = 1; j <= k; ++j)
        result *= (static_cast<double>(n - k + j) / j) * p;
    for (unsigned j = 0; j < n - k; ++j)
        result *= (1.0 - p);
    return result;
}

} // namespace

double
expectedMinBinomial(unsigned n, double p, unsigned d)
{
    double expected = 0.0;
    for (unsigned k = 0; k <= n; ++k)
        expected += binomialPmf(n, p, k) *
                    static_cast<double>(std::min(k, d));
    return expected;
}

std::vector<StageBlocking>
analyzeBlocking(const MultibutterflySpec &spec, double injection)
{
    METRO_ASSERT(injection >= 0.0 && injection <= 1.0,
                 "injection must be a probability");
    std::vector<StageBlocking> stages;
    double q = injection;
    for (const auto &st : spec.stages) {
        StageBlocking sb;
        sb.inputLoad = q;
        const unsigned i = st.params.numForward;
        const double per_dir = q / st.radix;
        const double carried =
            expectedMinBinomial(i, per_dir, st.dilation);
        const double offered =
            static_cast<double>(i) * per_dir; // E[X]
        sb.acceptance = offered > 0.0 ? carried / offered : 1.0;
        // Each direction has d output ports carrying `carried`
        // connections on average.
        sb.outputLoad = carried / st.dilation;
        stages.push_back(sb);
        q = sb.outputLoad;
    }
    return stages;
}

double
networkAcceptance(const MultibutterflySpec &spec, double injection)
{
    double acceptance = 1.0;
    for (const auto &sb : analyzeBlocking(spec, injection))
        acceptance *= sb.acceptance;
    return acceptance;
}

double
expectedAttempts(const MultibutterflySpec &spec, double injection)
{
    const double a = networkAcceptance(spec, injection);
    METRO_ASSERT(a > 0.0, "zero acceptance");
    return 1.0 / a;
}

} // namespace metro
