/**
 * @file
 * The source-responsible network interface.
 *
 * METRO routers push buffering, congestion handling, and fault
 * handling out of the network and onto the endpoints (Section 1).
 * The NetworkInterface implements that endpoint side:
 *
 *  - builds the routing header for a destination and streams
 *    [header words | data words | checksum | TURN] at one word per
 *    cycle into a randomly chosen injection port;
 *  - parses the reversal transient: per-router STATUS words, the
 *    destination acknowledgment, an optional reply payload, and the
 *    closing Drop;
 *  - on a blocked STATUS, a backward-control-bit drop, a failed
 *    checksum, or a watchdog timeout, closes the connection and
 *    *retries*. Randomized path selection inside the routers means
 *    a retry very likely takes a different path, avoiding the fault
 *    or hot spot (Section 4, Stochastic Path Selection);
 *  - delivers each message to software exactly once (duplicate
 *    arrivals from retries are re-acknowledged but not
 *    re-delivered) using per-source sequence numbers;
 *  - on the receive side, answers a TURN with an acknowledgment in
 *    the very next stream slot, followed for request-reply traffic
 *    by the reply payload — preceded by DATA-IDLE words when the
 *    reply takes time to produce (the paper's remote-memory-read
 *    motivation for DATA-IDLE, Section 5.1).
 */

#ifndef METRO_ENDPOINT_INTERFACE_HH
#define METRO_ENDPOINT_INTERFACE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/crc.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "diag/diary.hh"
#include "endpoint/message.hh"
#include "obs/observer.hh"
#include "obs/registry.hh"
#include "retry/policy.hh"
#include "sim/component.hh"
#include "sim/link.hh"

namespace metro
{

/** Route header plan for one destination from one endpoint. */
struct RoutePlan
{
    /** Packed route digits, stage 0 in the low bits. */
    std::uint64_t route = 0;

    /** Significant bits in `route`. */
    std::uint16_t length = 0;

    /** Header symbols to emit (paper Table 4 hbits / w). */
    unsigned headerSymbols = 1;
};

/** Endpoint protocol configuration. */
struct NiConfig
{
    /** Channel width in bits (must match the routers'). */
    unsigned width = 8;

    /** Give up after this many connection attempts. */
    unsigned maxAttempts = 64;

    /** Retry policy: backoff discipline (and its window), retry
     *  budget, admission control, anti-starvation aging. Defaults
     *  reproduce the original uniform [0, 7] backoff bit-exactly
     *  (see retry/policy.hh). */
    RetryPolicyConfig retry;

    /** Watchdog: cycles to wait after TURN for the connection to
     *  resolve before aborting the attempt. */
    unsigned replyTimeout = 2000;

    /** Receive-side watchdog: reset a half-open incoming stream
     *  after this many silent cycles (0 = off). */
    unsigned recvTimeout = 5000;

    /**
     * DATA-IDLE words inserted between consecutive payload words —
     * a source whose data is not deterministically available
     * (Section 5.1's first DATA-IDLE use case). The circuit stays
     * open and the words simply arrive later. 0 = back-to-back.
     */
    unsigned interWordGap = 0;
};

/** Workload metadata a driver can attach to a message at send
 *  time; recorded on the MessageRecord for per-class SLO and RPC
 *  fan-out accounting. Defaults mean "untagged, not in a group". */
struct SendMeta
{
    /** Traffic class (< kTrafficClasses). */
    std::uint8_t trafficClass = 0;

    /** RPC group id: 0 on the group's first leg (the record's own
     *  id becomes the group id), the first leg's id on the rest. */
    std::uint64_t rpcGroup = 0;

    /** Group width K; 0 = not part of a fan-out group. */
    std::uint16_t rpcFanout = 0;
};

/** A reply produced by the receive-side application callback. */
struct ReplySpec
{
    /** Cycles of DATA-IDLE before the reply data (e.g. memory
     *  access latency). */
    unsigned delay = 0;

    /** Reply payload words. */
    std::vector<Word> words;
};

/** A per-round reply in a multi-turn session. */
struct SessionReply
{
    /** Cycles of DATA-IDLE before the reply data. */
    unsigned delay = 0;

    /** Reply payload words for this round. */
    std::vector<Word> words;

    /** true: hand the connection back to the source with a TURN
     *  (another round may follow); false: close with Drop. */
    bool continueSession = true;
};

/**
 * One network endpoint: a source-responsible sender plus an
 * independent receiver per network input port.
 */
class NetworkInterface : public Component
{
  public:
    using RouteFunction = std::function<RoutePlan(NodeId dest)>;
    using ReplyHandler = std::function<ReplySpec(const MessageRecord &)>;
    using DeliveryHandler = std::function<void(const MessageRecord &)>;
    using SessionHandler = std::function<SessionReply(
        const MessageRecord &, unsigned round,
        const std::vector<Word> &data)>;

    NetworkInterface(NodeId id, const NiConfig &config,
                     MessageTracker *tracker, std::uint64_t seed);

    /** Attach an injection (endpoint → network) link; A end. */
    void addOutPort(Link *link);

    /** Attach a delivery (network → endpoint) link; B end. */
    void addInPort(Link *link);

    /**
     * Width cascading (Section 5.1): attach one injection port as a
     * group of c parallel slice links — slice k carries bits
     * [k·w/c, (k+1)·w/c) of every word, control words are
     * replicated, and the checksum word packs one CRC-16 per slice.
     * All groups of an endpoint must share the same width. @{
     */
    void addOutPortGroup(std::vector<Link *> slices);
    void addInPortGroup(std::vector<Link *> slices);
    /** @} */

    /** Slices per port group (1 = no cascading). */
    unsigned cascade() const { return cascade_; }

    /** Install the topology's route computation. */
    void setRouteFunction(RouteFunction fn) { routeFn_ = std::move(fn); }

    /** Install the request-reply application callback. Handlers
     *  may touch shared state, so a handler-bearing endpoint is
     *  pinned to the sharded engine's serial section (same for the
     *  session/delivery callbacks, the observer, the gate and the
     *  diary below — each setter invalidates the shard plan). */
    void
    setReplyHandler(ReplyHandler fn)
    {
        replyHandler_ = std::move(fn);
        notePlanChange();
    }

    /** Install the multi-turn session callback (invoked once per
     *  arriving round; at-least-once on session retry, so handlers
     *  should be idempotent per (source, sequence, round)). */
    void
    setSessionHandler(SessionHandler fn)
    {
        sessionHandler_ = std::move(fn);
        notePlanChange();
    }

    /** Install a callback invoked on each first-time delivery. */
    void
    setDeliveryHandler(DeliveryHandler fn)
    {
        deliveryHandler_ = std::move(fn);
        notePlanChange();
    }

    /**
     * Queue a message. @return the tracker id.
     * Payload words must fit in `width` bits each.
     */
    std::uint64_t send(NodeId dest, std::vector<Word> payload,
                       bool request_reply = false,
                       const SendMeta &meta = {});

    /**
     * Queue a multi-turn session (Section 5.1): the connection is
     * opened once and reversed 2·rounds−1 times; the source sends
     * rounds[k] in round k, the destination's SessionHandler
     * replies each time. The whole session retries from round 0 on
     * any failure. @return the tracker id.
     */
    std::uint64_t sendSession(NodeId dest,
                              std::vector<std::vector<Word>> rounds);

    /** True when nothing is queued or in flight on the send side. */
    bool
    sendIdle() const
    {
        return sendState_ == SendState::Idle && queue_.empty();
    }

    /** Queued-but-not-started messages. */
    std::size_t queueDepth() const { return queue_.size(); }

    /** Endpoint node id. */
    NodeId nodeId() const { return id_; }

    /** Channel width in bits. */
    unsigned width() const { return config_.width; }

    void tick(Cycle cycle) override;

    /** Event counters (sends, retries, timeouts, duplicates...). */
    const CounterSet &counters() const { return counters_; }

    /**
     * Register this endpoint's word-accounting counters and
     * connection histograms (setup latency, TURN round-trip, path
     * length, attempts) with a central registry (usually the owning
     * Network's). nullptr detaches; the registry must outlive the
     * endpoint.
     */
    void setMetrics(MetricsRegistry *metrics);

    /**
     * Parallel-safety verdict (see Component): an endpoint tick is
     * confined to per-endpoint state and its attached lanes unless
     * something shared is wired in — an observer, a fault diary,
     * the network-wide in-flight gate, or an application callback
     * (reply/session/delivery handler, each free to touch whatever
     * it likes). Tracker record fields are split by writer (source
     * side vs destination side), so plain tracker updates stay
     * safe.
     */
    bool
    parallelTickSafe() const override
    {
        return observer_ == nullptr && diary_ == nullptr &&
               gate_ == nullptr && !replyHandler_ &&
               !sessionHandler_ && !deliveryHandler_;
    }

    /** Redirect the shared registry slots (conservation counters,
     *  connection histograms) to per-endpoint scratch for parallel
     *  phase-1 (see Component::setConcurrentMetrics). */
    void setConcurrentMetrics(bool on) override;

    /** Fold the scratch back into the shared registry slots. */
    void flushConcurrentMetrics() override;

    /** Install a connection-lifecycle observer (attempt/resolution/
     *  delivery milestones); nullptr detaches. */
    void
    setObserver(ConnObserver *observer)
    {
        observer_ = observer;
        notePlanChange();
    }

    /**
     * Share the network-wide in-flight-attempts gate (injection
     * admission control): a queued message is only activated when a
     * slot is free, and holds it until it resolves or is
     * budget-parked. nullptr detaches; the gate must outlive the
     * endpoint. Builders wire this when retry.inflightLimit > 0.
     */
    void
    setInflightGate(InflightGate *gate)
    {
        gate_ = gate;
        notePlanChange();
    }

    /** Retry-budget tokens currently available (tests/diagnostics). */
    double retryBudgetTokens() const { return budget_.tokens(); }

    /**
     * Attach a fault diary (diag/diary.hh): every finished attempt
     * is reported with its STATUS evidence so the diagnosis layer
     * can localize faults. nullptr detaches; the diary must outlive
     * the endpoint (or be detached first).
     */
    void
    setFaultDiary(FaultDiary *diary)
    {
        diary_ = diary;
        notePlanChange();
    }

    /**
     * Scan-mask an injection port group: a disabled group is never
     * chosen for new attempts (the diagnosis layer's remedy for a
     * faulty injection wire). Re-enabling restores it. When every
     * group is disabled the masks are ignored — the endpoint must
     * always be able to try *something*.  @{
     */
    void setOutPortEnabled(unsigned group, bool enabled);
    bool
    outPortEnabled(unsigned group) const
    {
        return outPortEnabled_[group];
    }
    unsigned
    outGroups() const
    {
        return static_cast<unsigned>(out_.size());
    }
    /** @} */

    /** Number of attached ports. @{ */
    std::size_t numOutPorts() const { return out_.size(); }
    std::size_t numInPorts() const { return in_.size(); }
    /** @} */

  private:
    friend class CheckpointIO;

    enum class SendState : std::uint8_t
    {
        Idle,
        Sending,
        Await,
        Abort,
        Backoff,
    };

    enum class RecvState : std::uint8_t
    {
        Idle,
        Receiving,
        Replying,
    };

    struct RecvPort
    {
        std::vector<Link *> links; // one per slice
        RecvState state = RecvState::Idle;
        std::uint64_t msgId = 0;
        std::vector<Crc16> sliceCrc; // one per slice
        std::vector<Word> words;
        bool checksumSeen = false;
        Word checksum = 0; // per-slice CRC-16s, packed
        std::deque<Symbol> replyQueue;
        Cycle lastActivity = 0;
        unsigned round = 0;
    };

    /** Quiescence hooks (see sim/component.hh). @{ */
    bool canSleep() const override;
    void syncSkipped(Cycle from, Cycle upto) override;
    /** @} */

    /** Type-segregated dispatch (see Engine): endpoints registered
     *  consecutively tick through one devirtualized loop. */
    BatchTickFn
    batchTickFn() const override
    {
        return &Component::batchTickOf<NetworkInterface>;
    }

    void startAttempt(Cycle cycle);
    void startRound(unsigned round);
    bool roundReplyOk() const;
    void finishAttempt(Cycle cycle, bool success);
    /** Hand the finished attempt's evidence to the fault diary. */
    void reportAttempt(Cycle cycle, bool success);

    /** Slicing helpers (cascade() = 1 degenerates to pass-through).
     *  @{ */
    unsigned sliceWidth() const { return config_.width / cascade_; }
    Symbol sliceOf(const Symbol &s, unsigned k) const;
    /** Packed per-slice CRC-16s over a word sequence. */
    Word packedChecksum(const std::vector<Word> &words) const;
    void pushGroupDown(const std::vector<Link *> &group,
                       const Symbol &s);
    void pushGroupUp(const std::vector<Link *> &group,
                     const Symbol &s);
    /** Reassemble this cycle's symbol from a group's lanes; clears
     *  `consistent` when the slices disagree on the symbol kind. */
    Symbol readGroupUp(const std::vector<Link *> &group,
                       bool &consistent) const;
    Symbol readGroupDown(const std::vector<Link *> &group,
                         bool &consistent) const;
    /** @} */
    void scheduleRetry(Cycle cycle);
    /** Budget/aging check before a retry attempt launches. */
    bool admitRetry(MessageRecord &rec, Cycle cycle);
    /** Re-queue a budget-denied retry (head-of-queue when old). */
    void parkActive(const MessageRecord &rec, Cycle cycle);
    void releaseGate();
    void tickSend(Cycle cycle);
    void tickRecv(RecvPort &port, Cycle cycle);
    void processReceivedSymbol(RecvPort &port, const Symbol &sym,
                               Cycle cycle);
    void handleTurnAtReceiver(RecvPort &port, Cycle cycle);

    NodeId id_;
    NiConfig config_;
    MessageTracker *tracker_;
    Xoshiro256 rng_;
    std::unique_ptr<BackoffPolicy> policy_;
    RetryBudget budget_;
    RouteFunction routeFn_;
    ReplyHandler replyHandler_;
    DeliveryHandler deliveryHandler_;
    SessionHandler sessionHandler_;

    std::vector<std::vector<Link *>> out_;
    std::vector<bool> outPortEnabled_;
    std::vector<RecvPort> in_;
    unsigned cascade_ = 1;

    // --- send side ---
    std::deque<std::uint64_t> queue_;
    SendState sendState_ = SendState::Idle;
    std::uint64_t activeMsg_ = 0;
    unsigned outPort_ = 0;
    std::vector<Symbol> stream_;
    std::size_t cursor_ = 0;
    Cycle turnSent_ = 0;
    Cycle backoffUntil_ = 0;
    /** Last delay the policy chose for the active message
     *  (decorrelated-jitter input; reset per message). */
    Cycle prevBackoff_ = 0;
    /** Latest cycle tick() saw (timestamps admission sheds, which
     *  happen inside send() where no cycle is passed). */
    Cycle lastCycle_ = 0;
    InflightGate *gate_ = nullptr;
    bool gateHeld_ = false;
    std::vector<StatusWord> statuses_;
    bool sawBlockedStatus_ = false;
    /** How the attempt in flight has (so far) failed. */
    AttemptOutcome abortCause_ = AttemptOutcome::Success;
    /** Round-0 checksum word as sent (fault-diary evidence). */
    Word sentChecksum_ = 0;
    bool ackSeen_ = false;
    AckWord ack_;
    std::vector<Word> replyWords_;
    std::vector<Crc16> replySliceCrc_;
    bool replyChecksumSeen_ = false;
    Word replyChecksum_ = 0;
    std::uint32_t nextSequence_ = 1;

    // --- multi-turn session state (send side) ---
    unsigned roundIndex_ = 0;
    unsigned roundsAckedOk_ = 0;
    std::vector<std::vector<Word>> sessionReplies_;

    // --- receive side ---
    std::unordered_map<NodeId, std::uint32_t> lastDeliveredSeq_;

    CounterSet counters_;

    /** Interned hot-path counter slots (CounterSet::slot): the
     *  per-attempt/per-delivery events that fire constantly at
     *  saturation skip the string + map lookup of add(). @{ */
    std::uint64_t *cSubmitted_;
    std::uint64_t *cAttempts_;
    std::uint64_t *cRetries_;
    std::uint64_t *cSuccesses_;
    std::uint64_t *cFailedAttempts_;
    std::uint64_t *cDeliveries_;
    std::uint64_t *cBlockedStatuses_;
    std::uint64_t *cBcbAborts_;
    /** @} */

    // --- observability (see setMetrics / setObserver) ---
    // Without a registry the pointers target the scratch slots, so
    // the word-accounting hot paths stay branch-free.
    MetricsRegistry *metrics_ = nullptr;
    ConnObserver *observer_ = nullptr;
    FaultDiary *diary_ = nullptr;
    std::uint64_t scratch_ = 0;
    LogHistogram scratchHist_;
    std::uint64_t *mInjected_ = &scratch_;
    std::uint64_t *mDelivered_ = &scratch_;
    std::uint64_t *mDiscardEp_ = &scratch_;
    std::uint64_t *mSubmitted_ = &scratch_;
    std::uint64_t *mAdmitted_ = &scratch_;
    std::uint64_t *mShedAdm_ = &scratch_;
    LogHistogram *hSetup_ = &scratchHist_;
    LogHistogram *hTurnRt_ = &scratchHist_;
    LogHistogram *hPathLen_ = &scratchHist_;
    LogHistogram *hAttempts_ = &scratchHist_;
    LogHistogram *hGiveUp_ = &scratchHist_;

    /**
     * Concurrent-metrics mode (see setConcurrentMetrics): the
     * registry targets of the shared slots above, plus the
     * per-endpoint scratch the hot pointers swap to while parallel
     * phase-1 runs (flushed back in registration order by
     * Engine::syncStats; adds and merges commute, so the folded
     * values are thread-count invariant). @{
     */
    bool concMetrics_ = false;
    struct SharedSlots
    {
        std::uint64_t *injected;
        std::uint64_t *delivered;
        std::uint64_t *discardEp;
        std::uint64_t *submitted;
        std::uint64_t *admitted;
        std::uint64_t *shedAdm;
        LogHistogram *setup;
        LogHistogram *turnRt;
        LogHistogram *pathLen;
        LogHistogram *attempts;
        LogHistogram *giveUp;
    };
    SharedSlots real_{&scratch_,     &scratch_,     &scratch_,
                      &scratch_,     &scratch_,     &scratch_,
                      &scratchHist_, &scratchHist_, &scratchHist_,
                      &scratchHist_, &scratchHist_};
    std::uint64_t concInjected_ = 0;
    std::uint64_t concDelivered_ = 0;
    std::uint64_t concDiscardEp_ = 0;
    std::uint64_t concSubmitted_ = 0;
    std::uint64_t concAdmitted_ = 0;
    std::uint64_t concShedAdm_ = 0;
    LogHistogram concSetup_;
    LogHistogram concTurnRt_;
    LogHistogram concPathLen_;
    LogHistogram concAttempts_;
    LogHistogram concGiveUp_;
    /** Rebind the hot pointers to real_ or the scratch per the
     *  current mode. */
    void bindMetricSlots();
    /** @} */
    /** Cycle the current attempt launched (setup-latency base). */
    Cycle attemptStart_ = 0;
    /** Out-port group whose reverse lane tickSend consumed this
     *  tick (unread groups are censused for word conservation). */
    std::size_t protocolRead_ = SIZE_MAX;
};

} // namespace metro

#endif // METRO_ENDPOINT_INTERFACE_HH
