/**
 * @file
 * Message records and the message tracker.
 *
 * METRO networks are stateless — no message ever exists solely in
 * the network (Section 2) — so end-to-end correctness is entirely
 * the endpoints' responsibility. The MessageTracker is the
 * simulator's ground-truth ledger: every message a source submits
 * is registered here, every delivery and acknowledgment is recorded
 * against it, and the test suite checks exactly-once delivery and
 * latency accounting against this ledger.
 *
 * In hardware the (source, destination, sequence) triple would ride
 * in the message payload; the simulator carries a msgId tag on
 * symbols and keeps the triple here instead, which keeps payload
 * words free for checksum-integrity testing.
 */

#ifndef METRO_ENDPOINT_MESSAGE_HH
#define METRO_ENDPOINT_MESSAGE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/symbol.hh"

namespace metro
{

/** Lifecycle record of one end-to-end message. */
struct MessageRecord
{
    std::uint64_t id = 0;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    std::uint32_t sequence = 0;

    /** Payload data words (excluding the checksum word). */
    std::vector<Word> payload;

    /** True when the source expects a reply payload (remote read). */
    bool requestReply = false;

    /** Cycle the source accepted the message. */
    Cycle submitCycle = kNever;

    /** Cycle the first header word of the first attempt was on the
     *  wire (paper Figure 3 measures from message injection). */
    Cycle injectCycle = kNever;

    /** Cycle the destination delivered the payload to software. */
    Cycle deliverCycle = kNever;

    /** Cycle the source read the (successful) acknowledgment. */
    Cycle ackCycle = kNever;

    /** Cycle the source observed the final connection close. */
    Cycle completeCycle = kNever;

    /** Connection attempts used (1 = no retries). */
    unsigned attempts = 0;

    /** Times the destination delivered to software (must be ≤ 1). */
    unsigned deliveredCount = 0;

    /** Times the destination saw the message arrive intact
     *  (duplicates acknowledged but not re-delivered). */
    unsigned arrivalCount = 0;

    bool succeeded = false;
    bool gaveUp = false;

    /** Anti-starvation: crossed the ageStarve threshold (bypassed
     *  the retry budget) at least once. */
    bool starved = false;

    /** Shed by injection admission control: the bounded send queue
     *  was full, the message never entered it (gaveUp is also set —
     *  the message is resolved without any wire activity). */
    bool shedAdmission = false;

    /** STATUS words collected on the final (successful or last)
     *  attempt, in network-stage order. */
    std::vector<StatusWord> statuses;

    /** Reply payload received (request-reply messages). */
    std::vector<Word> reply;
    bool replyOk = false;

    /** Multi-turn sessions (Section 5.1: "Any number of data
     *  transmission reversals may occur during a single
     *  connection"): the data the source sends per round (round 0
     *  aliases `payload`) and the replies it collected. @{ */
    std::vector<std::vector<Word>> sessionRounds;
    std::vector<std::vector<Word>> sessionReplies;
    unsigned roundsCompleted = 0;
    /** @} */

    /** Traffic class for per-class SLO reporting (< kTrafficClasses;
     *  0 for untagged traffic). */
    std::uint8_t trafficClass = 0;

    /** RPC fan-out group: the id of the group's first leg, or 0 for
     *  messages outside any group. The first leg's rpcGroup is its
     *  own id. A group with fan-out K completes only when all K
     *  legs complete. @{ */
    std::uint64_t rpcGroup = 0;
    /** Group width K (set on every leg; 0 = not part of a group). */
    std::uint16_t rpcFanout = 0;
    /** @} */

    /** Injection-to-acknowledgment latency (paper's metric). */
    Cycle
    latency() const
    {
        METRO_ASSERT(succeeded && ackCycle != kNever &&
                     injectCycle != kNever,
                     "latency of an incomplete message");
        return ackCycle - injectCycle;
    }
};

/**
 * Ground-truth ledger of all messages in a simulation.
 */
class MessageTracker
{
  public:
    /** Register a new message; returns its simulator-wide id. */
    std::uint64_t
    create(NodeId src, NodeId dest, std::vector<Word> payload,
           std::uint32_t sequence, bool request_reply, Cycle now)
    {
        const std::uint64_t id = nextId_++;
        MessageRecord rec;
        rec.id = id;
        rec.src = src;
        rec.dest = dest;
        rec.sequence = sequence;
        rec.payload = std::move(payload);
        rec.requestReply = request_reply;
        rec.submitCycle = now;
        records_.emplace(id, std::move(rec));
        return id;
    }

    /** Mutable access to a record. */
    MessageRecord &
    record(std::uint64_t id)
    {
        auto it = records_.find(id);
        METRO_ASSERT(it != records_.end(), "unknown message %llu",
                     static_cast<unsigned long long>(id));
        return it->second;
    }

    /** Read-only access to a record. */
    const MessageRecord &
    record(std::uint64_t id) const
    {
        auto it = records_.find(id);
        METRO_ASSERT(it != records_.end(), "unknown message %llu",
                     static_cast<unsigned long long>(id));
        return it->second;
    }

    /** Whether an id is known (0 is never known). */
    bool
    known(std::uint64_t id) const
    {
        return records_.find(id) != records_.end();
    }

    /** All records (tests iterate for invariant checks). */
    const std::unordered_map<std::uint64_t, MessageRecord> &
    all() const
    {
        return records_;
    }

    /** Count of registered messages. */
    std::size_t size() const { return records_.size(); }

    /**
     * The id the next created message will receive. Ids are handed
     * out in strictly increasing order, so a harness can snapshot
     * this value before a run and recognise exactly the messages
     * submitted after the snapshot (the experiment-reset contract).
     */
    std::uint64_t nextId() const { return nextId_; }

  private:
    friend class CheckpointIO;

    std::uint64_t nextId_ = 1;
    std::unordered_map<std::uint64_t, MessageRecord> records_;
};

} // namespace metro

#endif // METRO_ENDPOINT_MESSAGE_HH
