#include "endpoint/interface.hh"

#include <algorithm>

#include "common/bitops.hh"

namespace metro
{

NetworkInterface::NetworkInterface(NodeId id, const NiConfig &config,
                                   MessageTracker *tracker,
                                   std::uint64_t seed)
    : Component("endpoint" + std::to_string(id)),
      id_(id), config_(config), tracker_(tracker),
      rng_(seed ^ (0xabcdef12345ULL + id))
{
    METRO_ASSERT(tracker_ != nullptr, "tracker required");
    const std::string err = validateRetryPolicy(config_.retry);
    METRO_ASSERT(err.empty(), "endpoint %u retry config: %s", id_,
                 err.c_str());
    policy_ = makeBackoffPolicy(config_.retry);
    budget_.configure(config_.retry.retryBudget,
                      config_.retry.retryBudgetCap);
    markSleepable();
    cSubmitted_ = &counters_.slot("submitted");
    cAttempts_ = &counters_.slot("attempts");
    cRetries_ = &counters_.slot("retries");
    cSuccesses_ = &counters_.slot("successes");
    cFailedAttempts_ = &counters_.slot("failedAttempts");
    cDeliveries_ = &counters_.slot("deliveries");
    cBlockedStatuses_ = &counters_.slot("blockedStatuses");
    cBcbAborts_ = &counters_.slot("bcbAborts");
}

void
NetworkInterface::setMetrics(MetricsRegistry *metrics)
{
    metrics_ = metrics;
    if (metrics == nullptr) {
        real_ = {&scratch_,     &scratch_,     &scratch_,
                 &scratch_,     &scratch_,     &scratch_,
                 &scratchHist_, &scratchHist_, &scratchHist_,
                 &scratchHist_, &scratchHist_};
    } else {
        real_ = {&metrics->counter("words.injected"),
                 &metrics->counter("words.delivered"),
                 &metrics->counter("words.discarded.endpoint"),
                 &metrics->counter("words.submitted"),
                 &metrics->counter("words.admitted"),
                 &metrics->counter("words.shed.admission"),
                 &metrics->histogram("conn.setup_latency"),
                 &metrics->histogram("conn.turn_roundtrip"),
                 &metrics->histogram("conn.path_length"),
                 &metrics->histogram("conn.attempts"),
                 &metrics->histogram("conn.giveup_latency")};
    }
    bindMetricSlots();
}

void
NetworkInterface::bindMetricSlots()
{
    // The registry slots are shared across endpoints, so while
    // parallel phase-1 runs the hot pointers aim at per-endpoint
    // scratch instead; Engine::syncStats folds it back.
    if (concMetrics_) {
        mInjected_ = &concInjected_;
        mDelivered_ = &concDelivered_;
        mDiscardEp_ = &concDiscardEp_;
        mSubmitted_ = &concSubmitted_;
        mAdmitted_ = &concAdmitted_;
        mShedAdm_ = &concShedAdm_;
        hSetup_ = &concSetup_;
        hTurnRt_ = &concTurnRt_;
        hPathLen_ = &concPathLen_;
        hAttempts_ = &concAttempts_;
        hGiveUp_ = &concGiveUp_;
    } else {
        mInjected_ = real_.injected;
        mDelivered_ = real_.delivered;
        mDiscardEp_ = real_.discardEp;
        mSubmitted_ = real_.submitted;
        mAdmitted_ = real_.admitted;
        mShedAdm_ = real_.shedAdm;
        hSetup_ = real_.setup;
        hTurnRt_ = real_.turnRt;
        hPathLen_ = real_.pathLen;
        hAttempts_ = real_.attempts;
        hGiveUp_ = real_.giveUp;
    }
}

void
NetworkInterface::setConcurrentMetrics(bool on)
{
    if (on == concMetrics_)
        return;
    concMetrics_ = on;
    if (!on)
        flushConcurrentMetrics();
    bindMetricSlots();
}

void
NetworkInterface::flushConcurrentMetrics()
{
    const auto flushCounter = [](std::uint64_t *to,
                                 std::uint64_t &from) {
        if (from != 0) {
            *to += from;
            from = 0;
        }
    };
    const auto flushHist = [](LogHistogram *to, LogHistogram &from) {
        if (from.count() != 0) {
            to->merge(from);
            from.reset();
        }
    };
    flushCounter(real_.injected, concInjected_);
    flushCounter(real_.delivered, concDelivered_);
    flushCounter(real_.discardEp, concDiscardEp_);
    flushCounter(real_.submitted, concSubmitted_);
    flushCounter(real_.admitted, concAdmitted_);
    flushCounter(real_.shedAdm, concShedAdm_);
    flushHist(real_.setup, concSetup_);
    flushHist(real_.turnRt, concTurnRt_);
    flushHist(real_.pathLen, concPathLen_);
    flushHist(real_.attempts, concAttempts_);
    flushHist(real_.giveUp, concGiveUp_);
}

void
NetworkInterface::addOutPort(Link *link)
{
    addOutPortGroup({link});
}

void
NetworkInterface::addInPort(Link *link)
{
    addInPortGroup({link});
}

void
NetworkInterface::addOutPortGroup(std::vector<Link *> slices)
{
    METRO_ASSERT(!slices.empty(), "empty slice group");
    if (out_.empty() && in_.empty())
        cascade_ = static_cast<unsigned>(slices.size());
    METRO_ASSERT(slices.size() == cascade_,
                 "mixed cascade widths on endpoint %u", id_);
    METRO_ASSERT(config_.width % cascade_ == 0,
                 "width %u not divisible into %u slices",
                 config_.width, cascade_);
    // Injection: we push down / read the reverse lane (A end).
    for (Link *l : slices)
        l->setWakeA(this);
    out_.push_back(std::move(slices));
    outPortEnabled_.push_back(true);
}

void
NetworkInterface::setOutPortEnabled(unsigned group, bool enabled)
{
    METRO_ASSERT(group < out_.size(), "out group %u out of range",
                 group);
    wake(); // reconfiguration, like the router scan hooks
    outPortEnabled_[group] = enabled;
}

void
NetworkInterface::addInPortGroup(std::vector<Link *> slices)
{
    METRO_ASSERT(!slices.empty(), "empty slice group");
    if (out_.empty() && in_.empty())
        cascade_ = static_cast<unsigned>(slices.size());
    METRO_ASSERT(slices.size() == cascade_,
                 "mixed cascade widths on endpoint %u", id_);
    // Delivery: we read the down lane / push replies up (B end).
    for (Link *l : slices)
        l->setWakeB(this);
    RecvPort port;
    port.links = std::move(slices);
    port.sliceCrc.resize(cascade_);
    in_.push_back(std::move(port));
}

Symbol
NetworkInterface::sliceOf(const Symbol &s, unsigned k) const
{
    Symbol out = s;
    switch (s.kind) {
      case SymbolKind::Data:
        out.value = (s.value >> (k * sliceWidth())) &
                    lowMask(sliceWidth());
        break;
      case SymbolKind::Checksum:
        // The checksum word packs one CRC-16 per slice.
        out.value = (s.value >> (k * 16)) & 0xffff;
        break;
      default:
        break; // control words are replicated verbatim
    }
    return out;
}

Word
NetworkInterface::packedChecksum(const std::vector<Word> &words) const
{
    Word packed = 0;
    for (unsigned k = 0; k < cascade_; ++k) {
        Crc16 crc;
        for (Word w : words)
            crc.update((w >> (k * sliceWidth())) &
                           lowMask(sliceWidth()),
                       sliceWidth());
        packed |= static_cast<Word>(crc.value()) << (k * 16);
    }
    return packed;
}

void
NetworkInterface::pushGroupDown(const std::vector<Link *> &group,
                                const Symbol &s)
{
    // One logical word per group push, regardless of slice count.
    if (s.kind == SymbolKind::Data)
        ++*mInjected_;
    for (unsigned k = 0; k < group.size(); ++k)
        group[k]->pushDown(sliceOf(s, k));
}

void
NetworkInterface::pushGroupUp(const std::vector<Link *> &group,
                              const Symbol &s)
{
    if (s.kind == SymbolKind::Data)
        ++*mInjected_;
    for (unsigned k = 0; k < group.size(); ++k)
        group[k]->pushUp(sliceOf(s, k));
}

namespace
{

/** Reassemble slice symbols into a logical one. */
Symbol
assembleSlices(const std::vector<Symbol> &slices, unsigned slice_w,
               bool &consistent)
{
    Symbol out = slices.front();
    consistent = true;
    for (std::size_t k = 1; k < slices.size(); ++k) {
        if (slices[k].kind != out.kind)
            consistent = false;
    }
    if (out.kind == SymbolKind::Data) {
        out.value = 0;
        for (std::size_t k = 0; k < slices.size(); ++k)
            out.value |= (slices[k].value & lowMask(slice_w))
                         << (k * slice_w);
    } else if (out.kind == SymbolKind::Checksum) {
        out.value = 0;
        for (std::size_t k = 0; k < slices.size(); ++k)
            out.value |= (slices[k].value & 0xffff) << (k * 16);
    }
    // Status/Ack: slice 0's payload speaks for the group (each
    // slice router reports its own checksum; the wired-AND keeps
    // the control outcomes aligned).
    return out;
}

} // namespace

Symbol
NetworkInterface::readGroupUp(const std::vector<Link *> &group,
                              bool &consistent) const
{
    if (cascade_ == 1) {
        // Degenerate single-slice group: the assembleSlices masking
        // applied directly, with no per-call slice vector.
        consistent = true;
        // Drained lane: the head slot is exactly Symbol{} (vacated
        // slots are reset) and no fault mode alters an Empty, so
        // skip materializing it.  Test the head kind, not occupancy:
        // occupancy counts same-cycle staged pushes (torn reads under
        // a cross-shard writer), whereas the head is frozen for the
        // whole eval phase.  Draw-for-draw identical to headUp(): an
        // Empty head yields Symbol{} under every fault mode without
        // consuming a corruption draw.
        if (group.front()->peekKindUp() == SymbolKind::Empty)
            return Symbol{};
        Symbol s = group.front()->headUp();
        if (s.kind == SymbolKind::Data)
            s.value &= lowMask(sliceWidth());
        else if (s.kind == SymbolKind::Checksum)
            s.value &= 0xffff;
        return s;
    }
    std::vector<Symbol> slices;
    slices.reserve(group.size());
    for (Link *l : group)
        slices.push_back(l->headUp());
    return assembleSlices(slices, sliceWidth(), consistent);
}

Symbol
NetworkInterface::readGroupDown(const std::vector<Link *> &group,
                                bool &consistent) const
{
    if (cascade_ == 1) {
        consistent = true;
        // Head-kind test, not occupancy — see readGroupUp.
        if (group.front()->peekKindDown() == SymbolKind::Empty)
            return Symbol{};
        Symbol s = group.front()->headDown();
        if (s.kind == SymbolKind::Data)
            s.value &= lowMask(sliceWidth());
        else if (s.kind == SymbolKind::Checksum)
            s.value &= 0xffff;
        return s;
    }
    std::vector<Symbol> slices;
    slices.reserve(group.size());
    for (Link *l : group)
        slices.push_back(l->headDown());
    return assembleSlices(slices, sliceWidth(), consistent);
}

std::uint64_t
NetworkInterface::send(NodeId dest, std::vector<Word> payload,
                       bool request_reply, const SendMeta &meta)
{
    // New work for the send machine: leave quiescence first, so
    // lastCycle_ (which timestamps same-cycle admission sheds
    // below) is restored before anything reads it.
    wake();
    for (Word w : payload) {
        METRO_ASSERT((w & ~lowMask(config_.width)) == 0,
                     "payload word %llx exceeds channel width %u",
                     static_cast<unsigned long long>(w),
                     config_.width);
    }
    // A message's wire footprint is its payload plus the checksum
    // word (what injection admission is bounding).
    const std::uint64_t words = payload.size() + 1;
    const std::uint64_t id =
        tracker_->create(id_, dest, std::move(payload), nextSequence_++,
                         request_reply, /*now=*/kNever);
    {
        auto &rec = tracker_->record(id);
        rec.trafficClass = meta.trafficClass;
        rec.rpcFanout = meta.rpcFanout;
        // rpcGroup 0 on a fan-out leg marks the group head: its own
        // id names the group for the remaining legs.
        if (meta.rpcFanout > 0)
            rec.rpcGroup = meta.rpcGroup ? meta.rpcGroup : id;
    }
    ++*cSubmitted_;
    *mSubmitted_ += words;
    if (config_.retry.sendQueueLimit > 0 &&
        queue_.size() >= config_.retry.sendQueueLimit) {
        // Admission control: shed at the source boundary. The
        // message resolves immediately (gaveUp) without touching
        // the wire, so the shed words land in their own
        // conservation bin: submitted == admitted + shed.
        auto &rec = tracker_->record(id);
        rec.gaveUp = true;
        rec.shedAdmission = true;
        rec.submitCycle = lastCycle_;
        rec.completeCycle = lastCycle_;
        counters_.add("admissionSheds");
        *mShedAdm_ += words;
        return id;
    }
    *mAdmitted_ += words;
    queue_.push_back(id);
    return id;
}

std::uint64_t
NetworkInterface::sendSession(NodeId dest,
                              std::vector<std::vector<Word>> rounds)
{
    wake(); // see send()
    METRO_ASSERT(!rounds.empty(), "session needs at least one round");
    for (const auto &round : rounds) {
        for (Word w : round) {
            METRO_ASSERT((w & ~lowMask(config_.width)) == 0,
                         "session word exceeds channel width");
        }
    }
    const std::uint64_t words = rounds.front().size() + 1;
    const std::uint64_t id =
        tracker_->create(id_, dest, rounds.front(), nextSequence_++,
                         /*request_reply=*/true, kNever);
    tracker_->record(id).sessionRounds = std::move(rounds);
    ++*cSubmitted_;
    counters_.add("sessionsSubmitted");
    *mSubmitted_ += words;
    if (config_.retry.sendQueueLimit > 0 &&
        queue_.size() >= config_.retry.sendQueueLimit) {
        auto &rec = tracker_->record(id);
        rec.gaveUp = true;
        rec.shedAdmission = true;
        rec.submitCycle = lastCycle_;
        rec.completeCycle = lastCycle_;
        counters_.add("admissionSheds");
        *mShedAdm_ += words;
        return id;
    }
    *mAdmitted_ += words;
    queue_.push_back(id);
    return id;
}

void
NetworkInterface::startRound(unsigned round)
{
    const auto &rec = tracker_->record(activeMsg_);
    const auto &data = round == 0 ? rec.payload
                                  : rec.sessionRounds[round];
    stream_.clear();
    if (round == 0) {
        const RoutePlan plan = routeFn_(rec.dest);
        for (unsigned h = 0; h < plan.headerSymbols; ++h)
            stream_.push_back(
                Symbol::header(plan.route, plan.length, activeMsg_));
    }
    for (std::size_t k = 0; k < data.size(); ++k) {
        if (k > 0) {
            for (unsigned g = 0; g < config_.interWordGap; ++g)
                stream_.push_back(Symbol::control(
                    SymbolKind::DataIdle, activeMsg_));
        }
        stream_.push_back(Symbol::data(data[k], activeMsg_));
    }
    Symbol ck;
    ck.kind = SymbolKind::Checksum;
    ck.value = packedChecksum(data);
    ck.msgId = activeMsg_;
    if (round == 0)
        sentChecksum_ = ck.value; // fault-diary CRC evidence
    stream_.push_back(ck);
    stream_.push_back(Symbol::control(SymbolKind::Turn, activeMsg_));

    cursor_ = 0;
    roundIndex_ = round;
    ackSeen_ = false;
    replyWords_.clear();
    replySliceCrc_.assign(cascade_, Crc16{});
    replyChecksumSeen_ = false;
    sendState_ = SendState::Sending;
}

bool
NetworkInterface::roundReplyOk() const
{
    if (!ackSeen_ || !ack_.ok)
        return false;
    if (replyChecksumSeen_) {
        for (unsigned k = 0; k < cascade_; ++k) {
            const auto expected =
                (replyChecksum_ >> (k * 16)) & 0xffff;
            if (replySliceCrc_[k].value() != expected)
                return false;
        }
    }
    return true;
}

void
NetworkInterface::startAttempt(Cycle cycle)
{
    METRO_ASSERT(!out_.empty(), "endpoint %u has no injection ports",
                 id_);
    METRO_ASSERT(routeFn_, "endpoint %u has no route function", id_);

    auto &rec = tracker_->record(activeMsg_);
    ++rec.attempts;
    ++*cAttempts_;
    if (rec.attempts == 1)
        prevBackoff_ = 0; // fresh message: no previous delay
    else
        ++*cRetries_;
    attemptStart_ = cycle;
    if (observer_ != nullptr)
        observer_->onAttemptStart(activeMsg_, rec.attempts, cycle);

    // Stochastic injection-port choice: with multiple network input
    // ports per endpoint (Figure 1), retries spread over them too.
    outPort_ = static_cast<unsigned>(rng_.below(out_.size()));
    if (!outPortEnabled_[outPort_]) {
        // Scan-masked group: re-draw among the enabled ones. With
        // every group masked the original draw stands — the
        // endpoint must always be able to try something.
        std::vector<unsigned> enabled;
        for (unsigned g = 0; g < out_.size(); ++g)
            if (outPortEnabled_[g])
                enabled.push_back(g);
        if (!enabled.empty())
            outPort_ = enabled[rng_.below(enabled.size())];
    }

    statuses_.clear();
    sawBlockedStatus_ = false;
    abortCause_ = AttemptOutcome::RoundFail; // conservative default
    roundsAckedOk_ = 0;
    sessionReplies_.clear();
    startRound(0);

    // First word goes out this very tick; it is on the wire next
    // cycle, which is the paper's "message injection" instant.
    if (rec.injectCycle == kNever)
        rec.injectCycle = cycle + 1;
}

void
NetworkInterface::reportAttempt(Cycle cycle, bool success)
{
    if (diary_ == nullptr)
        return;
    AttemptEvidence e;
    e.src = id_;
    e.dest = tracker_->record(activeMsg_).dest;
    e.cycle = cycle;
    e.outcome = success ? AttemptOutcome::Success : abortCause_;
    e.outPort = outPort_;
    e.statuses = statuses_;
    e.sawBlocked = sawBlockedStatus_;
    e.sentCrc = static_cast<std::uint16_t>(sentChecksum_ & 0xffff);
    diary_->record(e);
}

void
NetworkInterface::scheduleRetry(Cycle cycle)
{
    auto &rec = tracker_->record(activeMsg_);
    reportAttempt(cycle, /*success=*/false);
    if (observer_ != nullptr)
        observer_->onAttemptEnd(activeMsg_, false, cycle);
    // Congestion signal: a blocked STATUS or a backward-control-bit
    // drop means the path was contended — as opposed to corruption
    // or a timeout, which point at faults. AIMD feeds on the
    // distinction.
    const bool congested = sawBlockedStatus_ ||
                           abortCause_ == AttemptOutcome::BcbDrop;
    policy_->onOutcome(/*success=*/false, congested);
    if (rec.attempts >= config_.maxAttempts) {
        rec.gaveUp = true;
        rec.completeCycle = cycle;
        counters_.add("giveUps");
        hAttempts_->sample(rec.attempts);
        hGiveUp_->sample(cycle - rec.submitCycle);
        if (observer_ != nullptr)
            observer_->onMessageResolved(activeMsg_, false, cycle);
        releaseGate();
        activeMsg_ = 0;
        sendState_ = SendState::Idle;
        return;
    }
    BackoffContext ctx;
    ctx.attempt = rec.attempts;
    ctx.congested = congested;
    ctx.messageAge = cycle - rec.submitCycle;
    ctx.prevDelay = prevBackoff_;
    Cycle wait = policy_->nextDelay(ctx, rng_);
    // Aging, first threshold: an old message's backoff is clamped
    // to the minimum so it keeps contending for the network.
    const auto &rp = config_.retry;
    if (rp.ageClamp > 0 && ctx.messageAge >= rp.ageClamp &&
        wait > rp.backoffMin) {
        wait = rp.backoffMin;
        counters_.add("backoffClamps");
    }
    prevBackoff_ = wait;
    backoffUntil_ = cycle + 1 + wait;
    sendState_ = SendState::Backoff;
}

bool
NetworkInterface::admitRetry(MessageRecord &rec, Cycle cycle)
{
    // First attempts are always free: the budget bounds *retry*
    // traffic relative to offered load, not offered load itself.
    if (rec.attempts == 0 || !budget_.enabled())
        return true;
    const auto &rp = config_.retry;
    if (rp.ageStarve > 0 && cycle - rec.submitCycle >= rp.ageStarve) {
        // Aging, second threshold: a starving message bypasses the
        // budget entirely, so an empty bucket can never wedge a
        // sender forever (the liveness escape validateRetryPolicy
        // insists on).
        if (!rec.starved) {
            rec.starved = true;
            counters_.add("starvations");
        }
        return true;
    }
    if (budget_.tryConsume())
        return true;
    counters_.add("budgetDenials");
    return false;
}

void
NetworkInterface::parkActive(const MessageRecord &rec, Cycle cycle)
{
    // Old messages escalate to head-of-queue; younger parked
    // retries requeue behind fresh traffic, whose free first
    // attempts both make progress and refill the budget.
    const auto &rp = config_.retry;
    if (rp.ageClamp > 0 && cycle - rec.submitCycle >= rp.ageClamp)
        queue_.push_front(activeMsg_);
    else
        queue_.push_back(activeMsg_);
    counters_.add("retriesParked");
    releaseGate();
    activeMsg_ = 0;
    sendState_ = SendState::Idle;
}

void
NetworkInterface::releaseGate()
{
    if (gateHeld_) {
        gate_->release();
        gateHeld_ = false;
    }
}

void
NetworkInterface::finishAttempt(Cycle cycle, bool success)
{
    auto &rec = tracker_->record(activeMsg_);
    rec.statuses = statuses_;
    if (success) {
        rec.succeeded = true;
        rec.completeCycle = cycle;
        rec.reply = replyWords_;
        rec.replyOk = rec.requestReply;
        rec.sessionReplies = sessionReplies_;
        rec.roundsCompleted = roundsAckedOk_;
        ++*cSuccesses_;
        hAttempts_->sample(rec.attempts);
        hPathLen_->sample(statuses_.size());
        policy_->onOutcome(/*success=*/true, /*congested=*/false);
        budget_.onSuccess();
        reportAttempt(cycle, /*success=*/true);
        if (observer_ != nullptr) {
            observer_->onAttemptEnd(activeMsg_, true, cycle);
            observer_->onMessageResolved(activeMsg_, true, cycle);
        }
        releaseGate();
        activeMsg_ = 0;
        sendState_ = SendState::Idle;
    } else {
        ++*cFailedAttempts_;
        scheduleRetry(cycle);
    }
}

void
NetworkInterface::tickSend(Cycle cycle)
{
    // Start a queued message when the sender is free.
    if (sendState_ == SendState::Idle) {
        if (queue_.empty())
            return;
        // Global in-flight-attempts gate (admission control): a
        // message activates only when a slot is free. Endpoints
        // tick in fixed engine order, so acquisition stays
        // deterministic.
        if (gate_ != nullptr && !gate_->tryAcquire()) {
            counters_.add("gateDeferrals");
            return;
        }
        gateHeld_ = gate_ != nullptr;
        activeMsg_ = queue_.front();
        queue_.pop_front();
        auto &rec = tracker_->record(activeMsg_);
        if (rec.submitCycle == kNever)
            rec.submitCycle = cycle;
        if (!admitRetry(rec, cycle)) {
            // A budget-parked retry popped while the bucket is
            // still dry: park it again and free the cycle.
            parkActive(rec, cycle);
            return;
        }
        startAttempt(cycle);
        // fall through into Sending below to emit the first word
    }

    const std::vector<Link *> *group = &out_[outPort_];

    if (sendState_ == SendState::Backoff) {
        if (cycle < backoffUntil_)
            return;
        auto &rec = tracker_->record(activeMsg_);
        if (!admitRetry(rec, cycle)) {
            parkActive(rec, cycle);
            return;
        }
        startAttempt(cycle);
        group = &out_[outPort_]; // port re-chosen by startAttempt
    }

    if (sendState_ == SendState::Abort) {
        pushGroupDown(*group,
                      Symbol::control(SymbolKind::Drop, activeMsg_));
        scheduleRetry(cycle);
        return;
    }

    // Watch the reverse lane in Sending and Await alike: the
    // backward control bit can overtake the stream.
    protocolRead_ = outPort_;
    bool consistent = true;
    const Symbol rsym = readGroupUp(*group, consistent);
    if (!consistent) {
        // Slice streams disagree: a cascade fault escaped the
        // wired-AND. Treat the attempt as corrupted.
        counters_.add("sliceDisagreement");
        abortCause_ = AttemptOutcome::SliceDisagree;
        sendState_ = SendState::Abort;
        return;
    }

    if (sendState_ == SendState::Sending) {
        if (rsym.kind == SymbolKind::BcbDrop) {
            ++*cBcbAborts_;
            abortCause_ = AttemptOutcome::BcbDrop;
            sendState_ = SendState::Abort;
            return; // truncate the stream; Drop goes out next tick
        }
        // Reverse Data while still streaming forward is debris of a
        // dead round; it is not captured anywhere.
        if (rsym.kind == SymbolKind::Data)
            ++*mDiscardEp_;
        pushGroupDown(*group, stream_[cursor_++]);
        if (cursor_ == stream_.size()) {
            sendState_ = SendState::Await;
            turnSent_ = cycle;
        }
        return;
    }

    METRO_ASSERT(sendState_ == SendState::Await, "bad send state");

    switch (rsym.kind) {
      case SymbolKind::Empty:
      case SymbolKind::DataIdle:
      case SymbolKind::Header:
        break;
      case SymbolKind::Status: {
        const auto sw = StatusWord::decode(rsym.value);
        statuses_.push_back(sw);
        if (sw.blocked) {
            sawBlockedStatus_ = true;
            ++*cBlockedStatuses_;
        }
        break;
      }
      case SymbolKind::Ack: {
        ack_ = AckWord::decode(rsym.value);
        ackSeen_ = true;
        hTurnRt_->sample(cycle - turnSent_);
        if (ack_.ok) {
            auto &rec = tracker_->record(activeMsg_);
            if (roundIndex_ == 0) {
                rec.ackCycle = cycle;
                hSetup_->sample(cycle - attemptStart_);
            }
        } else {
            counters_.add("nacks");
        }
        break;
      }
      case SymbolKind::Data:
        ++*mDelivered_;
        replyWords_.push_back(rsym.value);
        for (unsigned k = 0; k < cascade_; ++k)
            replySliceCrc_[k].update(
                (rsym.value >> (k * sliceWidth())) &
                    lowMask(sliceWidth()),
                sliceWidth());
        break;
      case SymbolKind::Checksum:
        replyChecksumSeen_ = true;
        replyChecksum_ = rsym.value;
        break;
      case SymbolKind::Drop: {
        const auto &rec = tracker_->record(activeMsg_);
        bool ok;
        if (!rec.sessionRounds.empty()) {
            // The destination closed the session. Success iff every
            // round so far resolved cleanly and this closing round
            // did too.
            ok = roundReplyOk() && !sawBlockedStatus_;
            if (ok) {
                ++roundsAckedOk_;
                sessionReplies_.push_back(replyWords_);
            } else {
                abortCause_ = AttemptOutcome::RoundFail;
            }
        } else {
            ok = ackSeen_ && ack_.ok && !sawBlockedStatus_;
            if (!ok)
                abortCause_ = AttemptOutcome::Nack;
            if (ok && rec.requestReply) {
                ok = replyChecksumSeen_ && roundReplyOk();
                if (!ok) {
                    counters_.add("replyChecksumFail");
                    abortCause_ = AttemptOutcome::ReplyChecksum;
                }
            }
        }
        finishAttempt(cycle, ok);
        return;
      }
      case SymbolKind::BcbDrop:
        ++*cBcbAborts_;
        abortCause_ = AttemptOutcome::BcbDrop;
        sendState_ = SendState::Abort;
        return;
      case SymbolKind::Turn: {
        // The destination handed the connection back (multi-turn
        // session, Section 5.1).
        const auto &rec = tracker_->record(activeMsg_);
        if (!roundReplyOk() || sawBlockedStatus_) {
            counters_.add("roundFailures");
            abortCause_ = AttemptOutcome::RoundFail;
            sendState_ = SendState::Abort;
            return;
        }
        ++roundsAckedOk_;
        sessionReplies_.push_back(replyWords_);
        counters_.add("roundsCompleted");
        if (roundIndex_ + 1 < rec.sessionRounds.size()) {
            startRound(roundIndex_ + 1); // Sending resumes next tick
        } else {
            // Nothing more to send: close the session from our
            // side; the Drop unwinds the path toward the
            // destination.
            pushGroupDown(*group, Symbol::control(SymbolKind::Drop,
                                                  activeMsg_));
            finishAttempt(cycle, true);
        }
        return;
      }
      case SymbolKind::Test:
        counters_.add("strayAtSource");
        break;
    }

    if (cycle - turnSent_ > config_.replyTimeout) {
        counters_.add("replyTimeouts");
        abortCause_ = AttemptOutcome::ReplyTimeout;
        sendState_ = SendState::Abort;
    }
}

void
NetworkInterface::handleTurnAtReceiver(RecvPort &port, Cycle cycle)
{
    const bool tracked = tracker_->known(port.msgId);
    MessageRecord *rec =
        tracked ? &tracker_->record(port.msgId) : nullptr;

    bool crc_ok = port.checksumSeen;
    if (port.checksumSeen) {
        for (unsigned k = 0; k < cascade_; ++k) {
            const auto expected = (port.checksum >> (k * 16)) & 0xffff;
            if (port.sliceCrc[k].value() != expected)
                crc_ok = false;
        }
    }
    bool ok = crc_ok && rec != nullptr;
    if (ok && port.round == 0 && rec->dest != id_) {
        ok = false;
        counters_.add("wrongDestination");
    }
    if (port.checksumSeen && rec != nullptr && !crc_ok)
        counters_.add("checksumFailures");

    bool duplicate = false;
    if (ok && port.round == 0) {
        ++rec->arrivalCount;
        auto it = lastDeliveredSeq_.find(rec->src);
        duplicate = it != lastDeliveredSeq_.end() &&
                    rec->sequence <= it->second;
        if (duplicate) {
            counters_.add("duplicateArrivals");
        } else {
            lastDeliveredSeq_[rec->src] = rec->sequence;
            if (rec->deliverCycle == kNever)
                rec->deliverCycle = cycle;
            ++rec->deliveredCount;
            ++*cDeliveries_;
            if (observer_ != nullptr)
                observer_->onDelivery(port.msgId, id_, cycle);
            if (deliveryHandler_)
                deliveryHandler_(*rec);
        }
    }

    // The acknowledgment occupies the very first reverse stream
    // slot: pushed in the same tick the TURN is read.
    AckWord ack;
    ack.ok = ok;
    ack.sequence = rec ? rec->sequence : 0;
    Symbol ack_sym;
    ack_sym.kind = SymbolKind::Ack;
    ack_sym.value = ack.encode();
    ack_sym.msgId = port.msgId;
    pushGroupUp(port.links, ack_sym);

    port.replyQueue.clear();
    const bool session =
        ok && !rec->sessionRounds.empty() && sessionHandler_;
    bool turn_back = false;
    if (session) {
        // Multi-turn session round (at-least-once on retry).
        const SessionReply sr =
            sessionHandler_(*rec, port.round, port.words);
        for (unsigned i = 0; i < sr.delay; ++i)
            port.replyQueue.push_back(
                Symbol::control(SymbolKind::DataIdle, port.msgId));
        for (Word w : sr.words) {
            METRO_ASSERT((w & ~lowMask(config_.width)) == 0,
                         "reply word exceeds channel width");
            port.replyQueue.push_back(Symbol::data(w, port.msgId));
        }
        Symbol ck;
        ck.kind = SymbolKind::Checksum;
        ck.value = packedChecksum(sr.words);
        ck.msgId = port.msgId;
        port.replyQueue.push_back(ck);
        turn_back = sr.continueSession;
        counters_.add("sessionRoundsServed");
    } else if (ok && rec->requestReply && rec->sessionRounds.empty()) {
        ReplySpec spec;
        if (replyHandler_)
            spec = replyHandler_(*rec);
        for (unsigned i = 0; i < spec.delay; ++i)
            port.replyQueue.push_back(
                Symbol::control(SymbolKind::DataIdle, port.msgId));
        for (Word w : spec.words) {
            METRO_ASSERT((w & ~lowMask(config_.width)) == 0,
                         "reply word exceeds channel width");
            port.replyQueue.push_back(Symbol::data(w, port.msgId));
        }
        Symbol ck;
        ck.kind = SymbolKind::Checksum;
        ck.value = packedChecksum(spec.words);
        ck.msgId = port.msgId;
        port.replyQueue.push_back(ck);
    }
    port.replyQueue.push_back(Symbol::control(
        turn_back ? SymbolKind::Turn : SymbolKind::Drop,
        port.msgId));
    port.state = RecvState::Replying;
}

void
NetworkInterface::processReceivedSymbol(RecvPort &port,
                                        const Symbol &sym, Cycle cycle)
{
    switch (sym.kind) {
      case SymbolKind::Header:
      case SymbolKind::DataIdle:
      case SymbolKind::Empty:
        break;
      case SymbolKind::Status:
        // Router status words of a reversal transient (they reach
        // the receiving end after the source turns the connection
        // forward again mid-session).
        counters_.add("statusAtReceiver");
        break;
      case SymbolKind::Data:
        ++*mDelivered_;
        port.words.push_back(sym.value);
        for (unsigned k = 0; k < cascade_; ++k)
            port.sliceCrc[k].update(
                (sym.value >> (k * sliceWidth())) &
                    lowMask(sliceWidth()),
                sliceWidth());
        break;
      case SymbolKind::Checksum:
        port.checksumSeen = true;
        port.checksum = sym.value;
        break;
      case SymbolKind::Turn:
        handleTurnAtReceiver(port, cycle);
        break;
      case SymbolKind::Drop:
        counters_.add("abortedReceives");
        port.state = RecvState::Idle;
        port.round = 0;
        break;
      default:
        counters_.add("strayAtReceiver");
        break;
    }
}

void
NetworkInterface::tickRecv(RecvPort &port, Cycle cycle)
{
    if (port.links.empty())
        return;

    bool consistent = true;
    Symbol sym = readGroupDown(port.links, consistent);
    if (!consistent) {
        // Disagreeing slices: poison the stream so the checksum
        // check fails and the source retries.
        counters_.add("sliceDisagreement");
        sym = Symbol::data(0, sym.msgId);
    }
    if (sym.occupied())
        port.lastActivity = cycle;

    switch (port.state) {
      case RecvState::Idle:
        // A circuit-switched delivery port latches onto whatever
        // stream starts arriving. The leading word is usually a
        // Header, but the last-stage router may have swallowed the
        // final header word, in which case the payload leads.
        if (sym.kind == SymbolKind::Header ||
            sym.kind == SymbolKind::Data ||
            sym.kind == SymbolKind::Checksum ||
            sym.kind == SymbolKind::DataIdle ||
            sym.kind == SymbolKind::Turn) {
            port.state = RecvState::Receiving;
            port.msgId = sym.msgId;
            port.round = 0;
            port.sliceCrc.assign(cascade_, Crc16{});
            port.words.clear();
            port.checksumSeen = false;
            processReceivedSymbol(port, sym, cycle);
        } else if (sym.occupied()) {
            counters_.add("strayAtReceiver");
        }
        break;

      case RecvState::Receiving:
        processReceivedSymbol(port, sym, cycle);
        // Half-open stream watchdog (e.g. the source's path died).
        if (port.state == RecvState::Receiving &&
            config_.recvTimeout > 0 && !sym.occupied() &&
            cycle - port.lastActivity > config_.recvTimeout) {
            counters_.add("recvTimeouts");
            port.state = RecvState::Idle;
        }
        break;

      case RecvState::Replying: {
        METRO_ASSERT(!port.replyQueue.empty(), "empty reply queue");
        const Symbol next = port.replyQueue.front();
        port.replyQueue.pop_front();
        pushGroupUp(port.links, next);
        if (next.kind == SymbolKind::Drop) {
            port.state = RecvState::Idle;
            port.round = 0;
        } else if (next.kind == SymbolKind::Turn) {
            // Session continues: receive the next round on the
            // still-open connection.
            port.state = RecvState::Receiving;
            ++port.round;
            port.sliceCrc.assign(cascade_, Crc16{});
            port.words.clear();
            port.checksumSeen = false;
            port.lastActivity = cycle;
        }
        if (sym.occupied() && sym.kind != SymbolKind::DataIdle) {
            counters_.add("strayAtReceiver");
            if (sym.kind == SymbolKind::Data)
                ++*mDiscardEp_;
        }
        break;
      }
    }
}

bool
NetworkInterface::canSleep() const
{
    // The send machine must be drained (no active attempt, no
    // backoff clock running, nothing queued), every receiver idle,
    // and every attached lane fast-pathed — an active link could
    // deliver a symbol (or debris the reverse-lane census must
    // see) any cycle.
    if (sendState_ != SendState::Idle || !queue_.empty())
        return false;
    for (const auto &port : in_) {
        if (port.state != RecvState::Idle)
            return false;
        for (const Link *l : port.links) {
            if (l->active())
                return false;
        }
    }
    for (const auto &group : out_) {
        for (const Link *l : group) {
            if (l->active())
                return false;
        }
    }
    return true;
}

void
NetworkInterface::syncSkipped(Cycle from, Cycle upto)
{
    (void)from;
    // Restore the "latest cycle tick() saw" clock to what an
    // eagerly-ticked idle instance would hold, so admission sheds
    // stamped inside send() before our next tick carry the right
    // cycle.
    if (upto > 0)
        lastCycle_ = upto - 1;
}

void
NetworkInterface::tick(Cycle cycle)
{
    lastCycle_ = cycle;
    for (auto &port : in_)
        tickRecv(port, cycle);
    protocolRead_ = SIZE_MAX;
    tickSend(cycle);

    if (metrics_ != nullptr) {
        // Word conservation: census the reverse lanes of injection
        // groups the send logic did not consume this cycle (idle,
        // backoff, abort, or simply other ports) — Data arriving
        // there evaporates. peekUp() never touches the fault PRNG,
        // so the census is invisible to the simulation proper.
        // Slice 0 stands for the group (one logical word).
        for (std::size_t g = 0; g < out_.size(); ++g) {
            if (g == protocolRead_ || out_[g].empty())
                continue;
            if (out_[g].front()->peekUp().kind == SymbolKind::Data)
                ++*mDiscardEp_;
        }
    }
}

} // namespace metro
