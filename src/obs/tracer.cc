#include "obs/tracer.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "network/network.hh"
#include "sim/symbol.hh"

namespace metro
{

const char *
connEventKindName(ConnEventKind kind)
{
    switch (kind) {
      case ConnEventKind::Header: return "HEADER";
      case ConnEventKind::Data: return "DATA";
      case ConnEventKind::Checksum: return "CHECKSUM";
      case ConnEventKind::Turn: return "TURN";
      case ConnEventKind::Status: return "STATUS";
      case ConnEventKind::Ack: return "ACK";
      case ConnEventKind::Drop: return "DROP";
      case ConnEventKind::BcbDrop: return "BCB-DROP";
      case ConnEventKind::Test: return "TEST";
      case ConnEventKind::AttemptStart: return "attempt-start";
      case ConnEventKind::AttemptEnd: return "attempt-end";
      case ConnEventKind::Resolved: return "resolved";
      case ConnEventKind::Delivered: return "delivered";
      case ConnEventKind::Grant: return "grant";
      case ConnEventKind::Block: return "block";
    }
    return "?";
}

void
ConnectionTracer::setMetrics(MetricsRegistry *metrics)
{
    if (metrics == nullptr) {
        mEvents_ = &scratch_;
        mDropped_ = &scratch_;
        return;
    }
    mEvents_ = &metrics->counter("tracer.events");
    mDropped_ = &metrics->counter("tracer.dropped");
}

void
ConnectionTracer::touch(ConnectionSummary &s, Cycle cycle)
{
    if (s.firstCycle == kNever || cycle < s.firstCycle)
        s.firstCycle = cycle;
    if (cycle > s.lastCycle)
        s.lastCycle = cycle;
}

void
ConnectionTracer::record(const ConnTraceRecord &event)
{
    ++recorded_;
    ++*mEvents_;
    if (capacity_ == 0) {
        ++dropped_;
        ++*mDropped_;
        return;
    }
    if (ring_.size() < capacity_) {
        ring_.push_back(event);
        return;
    }
    // Full: overwrite the oldest slot.
    ring_[ringStart_] = event;
    ringStart_ = (ringStart_ + 1) % capacity_;
    ++dropped_;
    ++*mDropped_;
}

void
ConnectionTracer::tick(Cycle cycle)
{
    for (Link *link : links_) {
        for (int laneIdx = 0; laneIdx < 2; ++laneIdx) {
            const Symbol sym =
                laneIdx == 0 ? link->peekDown() : link->peekUp();
            // DATA-IDLE keepalives would flood the ring during
            // reversal waits and carry no lifecycle information.
            if (!sym.occupied() || sym.kind == SymbolKind::DataIdle ||
                sym.msgId == 0) {
                continue;
            }
            ConnEventKind kind;
            switch (sym.kind) {
              case SymbolKind::Header:
                kind = ConnEventKind::Header;
                break;
              case SymbolKind::Data:
                kind = ConnEventKind::Data;
                break;
              case SymbolKind::Checksum:
                kind = ConnEventKind::Checksum;
                break;
              case SymbolKind::Turn:
                kind = ConnEventKind::Turn;
                break;
              case SymbolKind::Status:
                kind = ConnEventKind::Status;
                break;
              case SymbolKind::Ack:
                kind = ConnEventKind::Ack;
                break;
              case SymbolKind::Drop:
                kind = ConnEventKind::Drop;
                break;
              case SymbolKind::BcbDrop:
                kind = ConnEventKind::BcbDrop;
                break;
              case SymbolKind::Test:
                kind = ConnEventKind::Test;
                break;
              default:
                continue;
            }
            record({cycle, sym.msgId, sym.value, link->id(), kind,
                    static_cast<std::uint8_t>(laneIdx), 0});

            ConnectionSummary &s = summaries_[sym.msgId];
            s.msgId = sym.msgId;
            touch(s, cycle);
            switch (kind) {
              case ConnEventKind::Header: ++s.headerHops; break;
              case ConnEventKind::Data: ++s.dataWords; break;
              case ConnEventKind::Checksum: ++s.checksums; break;
              case ConnEventKind::Turn: ++s.turns; break;
              case ConnEventKind::Status: ++s.statuses; break;
              case ConnEventKind::Ack: ++s.acks; break;
              case ConnEventKind::Drop: ++s.drops; break;
              case ConnEventKind::BcbDrop: ++s.bcbDrops; break;
              default: break;
            }
        }
    }
}

void
ConnectionTracer::onAttemptStart(std::uint64_t msg, unsigned attempt,
                                 Cycle cycle)
{
    record({cycle, msg, 0, 0, ConnEventKind::AttemptStart, 0,
            static_cast<std::uint16_t>(attempt)});
    ConnectionSummary &s = summaries_[msg];
    s.msgId = msg;
    touch(s, cycle);
    s.attempts.push_back({attempt, cycle, kNever, false});
}

void
ConnectionTracer::onAttemptEnd(std::uint64_t msg, bool success,
                               Cycle cycle)
{
    record({cycle, msg, 0, 0, ConnEventKind::AttemptEnd, 0,
            static_cast<std::uint16_t>(success ? 1 : 0)});
    ConnectionSummary &s = summaries_[msg];
    s.msgId = msg;
    touch(s, cycle);
    // Close the most recent open span (attempts end in launch order).
    for (auto it = s.attempts.rbegin(); it != s.attempts.rend();
         ++it) {
        if (it->end == kNever) {
            it->end = cycle;
            it->success = success;
            break;
        }
    }
}

void
ConnectionTracer::onMessageResolved(std::uint64_t msg, bool success,
                                    Cycle cycle)
{
    record({cycle, msg, 0, 0, ConnEventKind::Resolved, 0,
            static_cast<std::uint16_t>(success ? 1 : 0)});
    ConnectionSummary &s = summaries_[msg];
    s.msgId = msg;
    touch(s, cycle);
    s.resolved = true;
    s.succeeded = success;
}

void
ConnectionTracer::onDelivery(std::uint64_t msg, NodeId dest,
                             Cycle cycle)
{
    record({cycle, msg, 0, dest, ConnEventKind::Delivered, 0, 0});
    ConnectionSummary &s = summaries_[msg];
    s.msgId = msg;
    touch(s, cycle);
    s.delivered = true;
}

void
ConnectionTracer::onGrant(RouterId router, unsigned stage,
                          std::uint64_t msg, Cycle cycle)
{
    record({cycle, msg, 0, router, ConnEventKind::Grant, 0,
            static_cast<std::uint16_t>(stage)});
    ConnectionSummary &s = summaries_[msg];
    s.msgId = msg;
    touch(s, cycle);
    ++s.grants;
}

void
ConnectionTracer::onBlock(RouterId router, unsigned stage,
                          std::uint64_t msg, Cycle cycle)
{
    record({cycle, msg, 0, router, ConnEventKind::Block, 0,
            static_cast<std::uint16_t>(stage)});
    ConnectionSummary &s = summaries_[msg];
    s.msgId = msg;
    touch(s, cycle);
    ++s.blocks;
}

std::vector<ConnTraceRecord>
ConnectionTracer::events() const
{
    std::vector<ConnTraceRecord> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(ringStart_ + i) % ring_.size()]);
    return out;
}

namespace
{

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

} // namespace

std::string
ConnectionTracer::chromeTraceJson() const
{
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  ";
    };

    // One track (tid) per message: a complete slice for the whole
    // lifecycle plus one per attempt. ts/dur are in simulated cycles
    // (rendered as microseconds by trace viewers).
    for (const auto &[msg, s] : summaries_) {
        const Cycle start = s.firstCycle == kNever ? 0 : s.firstCycle;
        const Cycle dur =
            s.lastCycle > start ? s.lastCycle - start : 1;
        sep();
        out += "{\"name\": \"msg ";
        appendU64(out, msg);
        out += "\", \"cat\": \"conn\", \"ph\": \"X\", \"pid\": 0, "
               "\"tid\": ";
        appendU64(out, msg);
        out += ", \"ts\": ";
        appendU64(out, start);
        out += ", \"dur\": ";
        appendU64(out, dur);
        out += ", \"args\": {\"headerHops\": ";
        appendU64(out, s.headerHops);
        out += ", \"dataWords\": ";
        appendU64(out, s.dataWords);
        out += ", \"checksums\": ";
        appendU64(out, s.checksums);
        out += ", \"turns\": ";
        appendU64(out, s.turns);
        out += ", \"statuses\": ";
        appendU64(out, s.statuses);
        out += ", \"acks\": ";
        appendU64(out, s.acks);
        out += ", \"drops\": ";
        appendU64(out, s.drops);
        out += ", \"bcbDrops\": ";
        appendU64(out, s.bcbDrops);
        out += ", \"grants\": ";
        appendU64(out, s.grants);
        out += ", \"blocks\": ";
        appendU64(out, s.blocks);
        out += ", \"attempts\": ";
        appendU64(out, s.attempts.size());
        out += ", \"resolved\": ";
        out += s.resolved ? "true" : "false";
        out += ", \"succeeded\": ";
        out += s.succeeded ? "true" : "false";
        out += ", \"delivered\": ";
        out += s.delivered ? "true" : "false";
        out += "}}";

        for (const AttemptSpan &a : s.attempts) {
            const Cycle aEnd =
                a.end == kNever ? s.lastCycle : a.end;
            const Cycle aDur = aEnd > a.start ? aEnd - a.start : 1;
            sep();
            out += "{\"name\": \"attempt ";
            appendU64(out, a.number);
            out += "\", \"cat\": \"attempt\", \"ph\": \"X\", "
                   "\"pid\": 0, \"tid\": ";
            appendU64(out, msg);
            out += ", \"ts\": ";
            appendU64(out, a.start);
            out += ", \"dur\": ";
            appendU64(out, aDur);
            out += ", \"args\": {\"success\": ";
            out += a.success ? "true" : "false";
            out += ", \"open\": ";
            out += a.end == kNever ? "true" : "false";
            out += "}}";
        }
    }

    // Instant events for the protocol milestones still in the ring.
    for (const ConnTraceRecord &e : events()) {
        switch (e.kind) {
          case ConnEventKind::Turn:
          case ConnEventKind::Ack:
          case ConnEventKind::Drop:
          case ConnEventKind::BcbDrop:
          case ConnEventKind::Grant:
          case ConnEventKind::Block:
          case ConnEventKind::Delivered:
            sep();
            out += "{\"name\": \"";
            out += connEventKindName(e.kind);
            out += "\", \"cat\": \"event\", \"ph\": \"i\", "
                   "\"s\": \"t\", \"pid\": 0, \"tid\": ";
            appendU64(out, e.msgId);
            out += ", \"ts\": ";
            appendU64(out, e.cycle);
            out += ", \"args\": {\"ref\": ";
            appendU64(out, e.ref);
            out += ", \"extra\": ";
            appendU64(out, e.extra);
            out += "}}";
            break;
          case ConnEventKind::Status: {
            const StatusWord sw = StatusWord::decode(e.value);
            sep();
            out += "{\"name\": \"STATUS\", \"cat\": \"event\", "
                   "\"ph\": \"i\", \"s\": \"t\", \"pid\": 0, "
                   "\"tid\": ";
            appendU64(out, e.msgId);
            out += ", \"ts\": ";
            appendU64(out, e.cycle);
            out += ", \"args\": {\"router\": ";
            appendU64(out, sw.router);
            out += ", \"stage\": ";
            appendU64(out, sw.stage);
            out += ", \"blocked\": ";
            out += sw.blocked ? "true" : "false";
            out += ", \"checksum\": ";
            appendU64(out, sw.checksum);
            out += "}}";
            break;
          }
          default:
            break;
        }
    }

    out += first ? "]}" : "\n]}";
    out += "\n";
    return out;
}

void
ConnectionTracer::writeBinary(std::ostream &out) const
{
    // Header: magic, version, record size, record count, evictions.
    // Records are packed little-endian-as-host (the format is a
    // same-machine soak artifact, not an interchange format).
    char header[32] = {};
    std::memcpy(header, kBinaryMagic, sizeof(kBinaryMagic));
    const std::uint32_t version = 1;
    const std::uint32_t recordSize = kBinaryRecordSize;
    const std::uint64_t count = ring_.size();
    std::memcpy(header + 8, &version, 4);
    std::memcpy(header + 12, &recordSize, 4);
    std::memcpy(header + 16, &count, 8);
    std::memcpy(header + 24, &dropped_, 8);
    out.write(header, sizeof(header));

    for (const ConnTraceRecord &e : events()) {
        char rec[kBinaryRecordSize] = {};
        std::memcpy(rec + 0, &e.cycle, 8);
        std::memcpy(rec + 8, &e.msgId, 8);
        std::memcpy(rec + 16, &e.value, 8);
        std::memcpy(rec + 24, &e.ref, 4);
        rec[28] = static_cast<char>(e.kind);
        rec[29] = static_cast<char>(e.lane);
        std::memcpy(rec + 30, &e.extra, 2);
        out.write(rec, sizeof(rec));
    }
}

void
attachTracer(Network &net, ConnectionTracer &tracer)
{
    for (LinkId l = 0; l < net.numLinks(); ++l)
        tracer.watch(&net.link(l));
    for (RouterId r = 0; r < net.numRouters(); ++r)
        net.router(r).setObserver(&tracer);
    for (NodeId e = 0; e < net.numEndpoints(); ++e)
        net.endpoint(e).setObserver(&tracer);
    tracer.setMetrics(&net.metrics());
    net.engine().addComponent(&tracer);
}

} // namespace metro
