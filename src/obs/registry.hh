/**
 * @file
 * Central metrics registry: named monotone counters and log-scale
 * histograms shared by routers, network interfaces, probes and the
 * connection tracer.
 *
 * Components register slots by name (dotted lower-case, e.g.
 * "words.injected", "router.3.occupancy") and cache the returned
 * reference/pointer: both maps use node-based containers, so slots
 * stay valid for the registry's lifetime and the hot path is a bare
 * pointer increment.
 *
 * Every value is derived purely from simulated events — never from
 * wall-clock time — so metrics are bit-identical across hosts and
 * across sweep thread counts. Counters are monotone and histograms
 * are bucket-monotone, which makes deltaSince() exact: experiments
 * snapshot the registry, run, and subtract.
 */

#ifndef METRO_OBS_REGISTRY_HH
#define METRO_OBS_REGISTRY_HH

#include <bit>
#include <cstdint>
#include <map>
#include <string>

namespace metro
{

/**
 * Log2-bucketed histogram of unsigned samples.
 *
 * Bucket 0 holds the value 0; bucket k >= 1 holds values in
 * [2^(k-1), 2^k). 65 buckets cover the full uint64 range. Only
 * bucket counts and the running sum are stored, so two histograms
 * taken from the same monotone source can be subtracted bucket-wise
 * (see delta()); min()/max() are therefore bucket-resolution
 * approximations (lower bound of the extreme occupied buckets).
 */
class LogHistogram
{
  public:
    static constexpr unsigned kBuckets = 65;

    void
    sample(std::uint64_t value)
    {
        ++buckets_[bucketOf(value)];
        ++count_;
        sum_ += value;
    }

    /** Record the same value n times in O(1) — exactly equivalent
     *  to n sample(value) calls (used by the quiescence scheduler's
     *  skipped-cycle catch-up; see MetroRouter::syncSkipped). */
    void
    sample(std::uint64_t value, std::uint64_t n)
    {
        buckets_[bucketOf(value)] += n;
        count_ += n;
        sum_ += value * n;
    }

    /** Bucket index a value falls into. */
    static unsigned
    bucketOf(std::uint64_t value)
    {
        return static_cast<unsigned>(std::bit_width(value));
    }

    /** Inclusive lower bound of bucket k. */
    static std::uint64_t
    bucketFloor(unsigned k)
    {
        return k == 0 ? 0 : std::uint64_t{1} << (k - 1);
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t bucket(unsigned k) const { return buckets_[k]; }

    double
    mean() const
    {
        return count_ == 0
            ? 0.0
            : static_cast<double>(sum_) / static_cast<double>(count_);
    }

    /** Lower bound of the lowest occupied bucket (0 when empty). */
    std::uint64_t
    min() const
    {
        for (unsigned k = 0; k < kBuckets; ++k) {
            if (buckets_[k] != 0)
                return bucketFloor(k);
        }
        return 0;
    }

    /** Lower bound of the highest occupied bucket (0 when empty). */
    std::uint64_t
    max() const
    {
        for (unsigned k = kBuckets; k-- > 0;) {
            if (buckets_[k] != 0)
                return bucketFloor(k);
        }
        return 0;
    }

    void
    merge(const LogHistogram &other)
    {
        for (unsigned k = 0; k < kBuckets; ++k)
            buckets_[k] += other.buckets_[k];
        count_ += other.count_;
        sum_ += other.sum_;
    }

    /**
     * Bucket-wise subtraction. Exact when `baseline` is an earlier
     * snapshot of this histogram (buckets only ever grow).
     */
    LogHistogram
    delta(const LogHistogram &baseline) const
    {
        LogHistogram d;
        for (unsigned k = 0; k < kBuckets; ++k)
            d.buckets_[k] = buckets_[k] - baseline.buckets_[k];
        d.count_ = count_ - baseline.count_;
        d.sum_ = sum_ - baseline.sum_;
        return d;
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        count_ = 0;
        sum_ = 0;
    }

  private:
    friend class CheckpointIO;

    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * Named counters + histograms. Copyable (snapshots are plain value
 * copies); deterministic iteration (std::map, sorted by name).
 */
class MetricsRegistry
{
  public:
    /** Find-or-create a counter slot. The reference stays valid for
     *  the registry's lifetime (map nodes are stable). */
    std::uint64_t &
    counter(const std::string &name)
    {
        return counters_[name];
    }

    /** Find-or-create a histogram slot (same stability guarantee). */
    LogHistogram &
    histogram(const std::string &name)
    {
        return histograms_[name];
    }

    void
    add(const std::string &name, std::uint64_t delta)
    {
        counters_[name] += delta;
    }

    /** Read a counter; 0 when absent. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Look up a histogram; nullptr when absent. */
    const LogHistogram *
    findHistogram(const std::string &name) const
    {
        auto it = histograms_.find(name);
        return it == histograms_.end() ? nullptr : &it->second;
    }

    const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return counters_;
    }

    const std::map<std::string, LogHistogram> &
    histograms() const
    {
        return histograms_;
    }

    /** Fold another registry into this one. */
    void merge(const MetricsRegistry &other);

    /**
     * Subtract an earlier snapshot of this registry. Slots absent
     * from the baseline are taken as zero; slots present only in the
     * baseline must not have shrunk (monotonicity) and are omitted
     * when their delta is zero-valued anyway.
     */
    MetricsRegistry deltaSince(const MetricsRegistry &baseline) const;

    void
    reset()
    {
        counters_.clear();
        histograms_.clear();
    }

    bool
    empty() const
    {
        return counters_.empty() && histograms_.empty();
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, LogHistogram> histograms_;
};

/**
 * Deterministic JSON rendering of a registry: counters as an object
 * of integers, histograms as {count, sum, mean, min, max, buckets}
 * with buckets a list of [floor, count] pairs for occupied buckets
 * only. `indent` is prepended to every line after the first; the
 * result carries no trailing newline.
 */
std::string metricsJson(const MetricsRegistry &m,
                        const std::string &indent = "");

} // namespace metro

#endif // METRO_OBS_REGISTRY_HH
