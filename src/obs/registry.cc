#include "obs/registry.hh"

#include <cinttypes>
#include <cstdio>

namespace metro
{

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
    for (const auto &[name, hist] : other.histograms_)
        histograms_[name].merge(hist);
}

MetricsRegistry
MetricsRegistry::deltaSince(const MetricsRegistry &baseline) const
{
    MetricsRegistry d;
    for (const auto &[name, value] : counters_) {
        auto it = baseline.counters_.find(name);
        std::uint64_t base =
            it == baseline.counters_.end() ? 0 : it->second;
        d.counters_[name] = value - base;
    }
    for (const auto &[name, hist] : histograms_) {
        auto it = baseline.histograms_.find(name);
        d.histograms_[name] = it == baseline.histograms_.end()
            ? hist
            : hist.delta(it->second);
    }
    return d;
}

namespace
{

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

void
appendDouble(std::string &out, double v)
{
    // Same rendering as report/json.cc: shortest round-trippable.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

} // namespace

std::string
metricsJson(const MetricsRegistry &m, const std::string &indent)
{
    const std::string in1 = indent + "  ";
    const std::string in2 = indent + "    ";

    std::string out = "{\n";

    out += in1 + "\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : m.counters()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += in2 + "\"" + name + "\": ";
        appendU64(out, value);
    }
    out += first ? "},\n" : "\n" + in1 + "},\n";

    out += in1 + "\"histograms\": {";
    first = true;
    for (const auto &[name, hist] : m.histograms()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += in2 + "\"" + name + "\": {\"count\": ";
        appendU64(out, hist.count());
        out += ", \"sum\": ";
        appendU64(out, hist.sum());
        out += ", \"mean\": ";
        appendDouble(out, hist.mean());
        out += ", \"min\": ";
        appendU64(out, hist.min());
        out += ", \"max\": ";
        appendU64(out, hist.max());
        out += ", \"buckets\": [";
        bool firstBucket = true;
        for (unsigned k = 0; k < LogHistogram::kBuckets; ++k) {
            if (hist.bucket(k) == 0)
                continue;
            if (!firstBucket)
                out += ", ";
            firstBucket = false;
            out += "[";
            appendU64(out, LogHistogram::bucketFloor(k));
            out += ", ";
            appendU64(out, hist.bucket(k));
            out += "]";
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n" + in1 + "}\n";

    out += indent + "}";
    return out;
}

} // namespace metro
