/**
 * @file
 * Connection-lifecycle tracer.
 *
 * A ConnectionTracer reconstructs full connection lifecycles —
 * launch, header consumption per stage, data, TURN, STATUS/checksum
 * words, drop/retry — from two complementary sources:
 *
 *   - wire sightings: each tick it passively samples the lanes of
 *     every watched link (Link::peekDown()/peekUp(), which never
 *     touch the corruption PRNG) and records occupied symbols that
 *     carry a message id;
 *   - protocol callbacks: routers and network interfaces report the
 *     milestones a wire probe cannot attribute by itself (attempt
 *     numbers, allocation grant/block, delivery, resolution) through
 *     the ConnObserver interface.
 *
 * Events land in a capacity-bounded ring (oldest evicted, eviction
 * counted) so soak runs cannot exhaust memory, while per-message
 * summaries are maintained incrementally and survive ring eviction.
 *
 * Exports: Chrome trace-event JSON (load in chrome://tracing or
 * Perfetto; one track per message, slices per attempt, instants for
 * TURN/STATUS/ACK/DROP) and a compact 32-byte-per-event binary ring
 * for soak runs.
 */

#ifndef METRO_OBS_TRACER_HH
#define METRO_OBS_TRACER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/observer.hh"
#include "obs/registry.hh"
#include "sim/component.hh"
#include "sim/link.hh"

namespace metro
{

class Network;

/** What a connection-trace event records. Wire kinds mirror the
 *  symbol alphabet; the rest are protocol milestones. */
enum class ConnEventKind : std::uint8_t
{
    Header,       ///< routing header seen on a link
    Data,         ///< payload word seen on a link
    Checksum,     ///< end-to-end checksum word seen on a link
    Turn,         ///< connection reversal seen on a link
    Status,       ///< STATUS word seen on a link (value decodes)
    Ack,          ///< ACK word seen on a link
    Drop,         ///< DROP seen on a link
    BcbDrop,      ///< backward-control-bit reclaim seen on a link
    Test,         ///< diagnostic TEST word seen on a link
    AttemptStart, ///< source NI launched an attempt (extra = number)
    AttemptEnd,   ///< attempt resolved (extra = 1 on success)
    Resolved,     ///< message resolved at source (extra = 1 on success)
    Delivered,    ///< destination accepted the payload (ref = dest)
    Grant,        ///< router allocation granted (ref = router)
    Block,        ///< router allocation blocked (ref = router)
};

/** Printable name of a ConnEventKind. */
const char *connEventKindName(ConnEventKind kind);

/** One fixed-size trace event (packed to 32 bytes on export). */
struct ConnTraceRecord
{
    Cycle cycle = 0;
    std::uint64_t msgId = 0;
    std::uint64_t value = 0;       ///< symbol value (wire events)
    std::uint32_t ref = 0;         ///< LinkId, RouterId or NodeId
    ConnEventKind kind = ConnEventKind::Header;
    std::uint8_t lane = 0;         ///< 0 down, 1 up (wire events)
    std::uint16_t extra = 0;       ///< attempt number / stage / flag
};

/** One attempt of one message, as seen by the source NI. */
struct AttemptSpan
{
    unsigned number = 0;   ///< 1-based attempt number
    Cycle start = 0;
    Cycle end = kNever;    ///< kNever while still open
    bool success = false;
};

/**
 * Incremental per-message lifecycle summary. Wire fields count
 * sightings (one per link-lane per cycle), i.e. a header crossing
 * three links counts three headerHops.
 */
struct ConnectionSummary
{
    std::uint64_t msgId = 0;
    Cycle firstCycle = kNever;
    Cycle lastCycle = 0;
    std::uint64_t headerHops = 0;
    std::uint64_t dataWords = 0;
    std::uint64_t checksums = 0;
    std::uint64_t turns = 0;
    std::uint64_t statuses = 0;
    std::uint64_t acks = 0;
    std::uint64_t drops = 0;
    std::uint64_t bcbDrops = 0;
    std::uint64_t grants = 0;
    std::uint64_t blocks = 0;
    bool resolved = false;
    bool succeeded = false;
    bool delivered = false;
    std::vector<AttemptSpan> attempts;
};

class ConnectionTracer : public Component, public ConnObserver
{
  public:
    /** Magic bytes opening the binary ring export. */
    static constexpr char kBinaryMagic[8] = {'M', 'T', 'R', 'C',
                                             '1', 0,   0,   0};
    /** Bytes per packed record in the binary export. */
    static constexpr std::size_t kBinaryRecordSize = 32;

    /** @param capacity ring bound: retain at most this many events
     *                  (oldest evicted first, evictions counted). */
    explicit ConnectionTracer(std::size_t capacity = 1u << 16)
        : Component("tracer"), capacity_(capacity)
    {}

    /** Watch a link (both lanes). */
    void watch(Link *link) { links_.push_back(link); }

    /** Surface event/eviction counters through a registry
     *  ("tracer.events", "tracer.dropped"). */
    void setMetrics(MetricsRegistry *metrics);

    void tick(Cycle cycle) override;

    /** ConnObserver milestones (routers / NIs call these). @{ */
    void onAttemptStart(std::uint64_t msg, unsigned attempt,
                        Cycle cycle) override;
    void onAttemptEnd(std::uint64_t msg, bool success,
                      Cycle cycle) override;
    void onMessageResolved(std::uint64_t msg, bool success,
                           Cycle cycle) override;
    void onDelivery(std::uint64_t msg, NodeId dest,
                    Cycle cycle) override;
    void onGrant(RouterId router, unsigned stage, std::uint64_t msg,
                 Cycle cycle) override;
    void onBlock(RouterId router, unsigned stage, std::uint64_t msg,
                 Cycle cycle) override;
    /** @} */

    /** Ring contents, oldest first. */
    std::vector<ConnTraceRecord> events() const;

    /** Total events recorded (including evicted ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events evicted by the capacity bound. */
    std::uint64_t dropped() const { return dropped_; }

    /** Lifecycle summaries keyed by message id (survive eviction). */
    const std::map<std::uint64_t, ConnectionSummary> &
    summaries() const
    {
        return summaries_;
    }

    /**
     * Chrome trace-event JSON ({"traceEvents": [...]}): per message
     * one complete slice plus one slice per attempt (tid = message
     * id), and instant events for TURN / STATUS / ACK / DROP /
     * BCB-DROP / grant / block still present in the ring.
     */
    std::string chromeTraceJson() const;

    /** Write the packed binary ring (header + 32-byte records). */
    void writeBinary(std::ostream &out) const;

  private:
    void record(const ConnTraceRecord &event);
    void touch(ConnectionSummary &s, Cycle cycle);

    std::size_t capacity_;
    std::vector<Link *> links_;
    std::vector<ConnTraceRecord> ring_;
    std::size_t ringStart_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::map<std::uint64_t, ConnectionSummary> summaries_;
    std::uint64_t scratch_ = 0;
    std::uint64_t *mEvents_ = &scratch_;
    std::uint64_t *mDropped_ = &scratch_;
};

/**
 * Convenience: watch every link of `net`, install the tracer as the
 * connection observer of every router and endpoint, hook it into the
 * network's metrics registry, and register it with the engine (call
 * after Network::finalize()).
 */
void attachTracer(Network &net, ConnectionTracer &tracer);

} // namespace metro

#endif // METRO_OBS_TRACER_HH
