/**
 * @file
 * Callback interface for connection-lifecycle observers.
 *
 * Routers and network interfaces accept one optional ConnObserver
 * and invoke it at the protocol milestones a wire probe cannot see
 * by itself (which attempt a header belongs to, whether an
 * allocation granted or blocked, when the source resolved the
 * message). The interface deliberately depends on nothing beyond
 * common/types.hh so that router and endpoint headers can include it
 * without layering cycles; the concrete ConnectionTracer lives in
 * obs/tracer.hh.
 *
 * All default implementations are no-ops: implementors override
 * only the milestones they care about.
 */

#ifndef METRO_OBS_OBSERVER_HH
#define METRO_OBS_OBSERVER_HH

#include <cstdint>

#include "common/types.hh"

namespace metro
{

class ConnObserver
{
  public:
    virtual ~ConnObserver() = default;

    /** Source NI launches attempt `attempt` (1-based) of `msg`. */
    virtual void
    onAttemptStart(std::uint64_t msg, unsigned attempt, Cycle cycle)
    {
        (void)msg;
        (void)attempt;
        (void)cycle;
    }

    /** Source NI finished an attempt (ack'd, dropped, or timed out). */
    virtual void
    onAttemptEnd(std::uint64_t msg, bool success, Cycle cycle)
    {
        (void)msg;
        (void)success;
        (void)cycle;
    }

    /** Source NI resolved the message (delivered or gave up). */
    virtual void
    onMessageResolved(std::uint64_t msg, bool success, Cycle cycle)
    {
        (void)msg;
        (void)success;
        (void)cycle;
    }

    /** Destination NI accepted the full payload of `msg`. */
    virtual void
    onDelivery(std::uint64_t msg, NodeId dest, Cycle cycle)
    {
        (void)msg;
        (void)dest;
        (void)cycle;
    }

    /** Router `router` (stage `stage`) granted a backward port. */
    virtual void
    onGrant(RouterId router, unsigned stage, std::uint64_t msg,
            Cycle cycle)
    {
        (void)router;
        (void)stage;
        (void)msg;
        (void)cycle;
    }

    /** Router `router` could not allocate a port (connection blocks). */
    virtual void
    onBlock(RouterId router, unsigned stage, std::uint64_t msg,
            Cycle cycle)
    {
        (void)router;
        (void)stage;
        (void)msg;
        (void)cycle;
    }
};

} // namespace metro

#endif // METRO_OBS_OBSERVER_HH
