/**
 * @file
 * Distributed-memory remote reads over METRO connection reversal —
 * the paper's motivating request–reply workload (Sections 2, 5.1).
 *
 * Every endpoint owns a slice of a global memory. A read sends the
 * address words to the home node and TURNs the connection; the
 * reply streams back over the already-open path with no second
 * connection setup. When the home node misses its "cache" it
 * stalls, and the DATA-IDLE mechanism holds the circuit open for
 * exactly the stall duration — the paper's example of why
 * DATA-IDLE exists.
 */

#include <cstdio>

#include "metro/metro.hh"

namespace
{

using namespace metro;

constexpr unsigned kWordsPerLine = 4; // a 4-word cache line

/** The sliced global memory: node n owns addresses n*256..n*256+255. */
Word
memoryWord(NodeId home, Word addr, unsigned k)
{
    return (home * 31 + addr * 7 + k * 3) & 0xff;
}

} // namespace

int
main()
{
    const MultibutterflySpec spec = fig3Spec(/*seed=*/7);
    auto net = buildMultibutterfly(spec);

    // Install the memory-controller reply handler on every node:
    // a cache hit answers immediately, a miss stalls 12 cycles
    // (DATA-IDLE fills the gap on the wire).
    for (NodeId n = 0; n < spec.numEndpoints; ++n) {
        net->endpoint(n).setReplyHandler(
            [n](const MessageRecord &req) {
                ReplySpec reply;
                const Word addr = req.payload.at(0);
                const bool hit = (addr % 4) != 0; // 75% hit rate
                reply.delay = hit ? 0 : 12;
                for (unsigned k = 0; k < kWordsPerLine; ++k)
                    reply.words.push_back(memoryWord(n, addr, k));
                return reply;
            });
    }

    std::printf("remote reads over connection reversal "
                "(64-node Figure 3 network)\n\n");
    std::printf("%6s %6s %6s %8s %8s %10s\n", "from", "home", "addr",
                "kind", "latency", "data ok");

    bool all_ok = true;
    Cycle hit_latency = 0, miss_latency = 0;
    const struct
    {
        NodeId src, home;
        Word addr;
    } reads[] = {
        {0, 42, 0x11}, {5, 42, 0x22}, {17, 3, 0x33},
        {63, 31, 0x10}, {8, 55, 0x0c}, {20, 9, 0x07},
    };

    for (const auto &rd : reads) {
        const auto id = net->endpoint(rd.src).send(
            rd.home, {rd.addr}, /*request_reply=*/true);
        net->engine().runUntil(
            [&] {
                const auto &rec = net->tracker().record(id);
                return rec.succeeded || rec.gaveUp;
            },
            20000);

        const auto &rec = net->tracker().record(id);
        bool ok = rec.succeeded && rec.replyOk &&
                  rec.reply.size() == kWordsPerLine;
        if (ok) {
            for (unsigned k = 0; k < kWordsPerLine; ++k)
                ok &= rec.reply[k] == memoryWord(rd.home, rd.addr, k);
        }
        all_ok &= ok;

        const bool hit = (rd.addr % 4) != 0;
        const Cycle lat = rec.completeCycle - rec.injectCycle;
        if (hit)
            hit_latency = lat;
        else
            miss_latency = lat;
        std::printf("%6u %6u %#6llx %8s %8llu %10s\n", rd.src,
                    rd.home,
                    static_cast<unsigned long long>(rd.addr),
                    hit ? "hit" : "MISS",
                    static_cast<unsigned long long>(lat),
                    ok ? "yes" : "NO");
    }

    std::printf("\nmiss costs exactly the %llu-cycle memory stall "
                "more than a hit (%llu vs %llu):\nDATA-IDLE held "
                "the circuit open while the home node fetched.\n",
                static_cast<unsigned long long>(miss_latency -
                                                hit_latency),
                static_cast<unsigned long long>(miss_latency),
                static_cast<unsigned long long>(hit_latency));

    if (!all_ok)
        return 1;

    // A concurrent burst: every node reads from a ring neighbour.
    std::vector<std::uint64_t> ids;
    for (NodeId n = 0; n < spec.numEndpoints; ++n)
        ids.push_back(net->endpoint(n).send(
            (n + 7) % spec.numEndpoints, {Word(n & 0xff)}, true));
    net->engine().runUntil(
        [&] {
            for (auto id : ids) {
                const auto &rec = net->tracker().record(id);
                if (!rec.succeeded && !rec.gaveUp)
                    return false;
            }
            return true;
        },
        50000);
    unsigned done = 0;
    for (auto id : ids)
        done += net->tracker().record(id).succeeded ? 1 : 0;
    std::printf("\nconcurrent burst: %u/%zu reads completed "
                "(with contention and retries)\n", done, ids.size());
    return done == ids.size() ? 0 : 1;
}
