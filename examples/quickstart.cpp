/**
 * @file
 * Quickstart: build the paper's Figure-3 network (64 endpoints,
 * 3 stages of radix-4 routers, dilation 2/2/1), send one 20-byte
 * message, and walk through what came back: the per-router STATUS
 * words of the reversal transient, the acknowledgment, and the
 * measured injection-to-acknowledgment latency (28 cycles unloaded,
 * as the Figure 3 caption states).
 */

#include <cstdio>

#include "metro/metro.hh"

int
main()
{
    using namespace metro;

    // 1. Build the network.
    const MultibutterflySpec spec = fig3Spec(/*seed=*/2024);
    auto net = buildMultibutterfly(spec);
    std::printf("built a %u-endpoint multibutterfly: %zu routers, "
                "%zu links, %u stages\n",
                spec.numEndpoints, net->numRouters(), net->numLinks(),
                net->numStages());

    // 2. Send a 20-byte message (19 payload words + checksum word)
    //    from endpoint 6 to endpoint 16 — the pair highlighted in
    //    the paper's Figure 1.
    std::vector<Word> payload;
    for (unsigned i = 0; i < 19; ++i)
        payload.push_back((0x40 + i) & 0xff);
    const auto id = net->endpoint(6).send(/*dest=*/16, payload);

    // 3. Run until the source-responsible protocol resolves it.
    const bool done = net->engine().runUntil(
        [&] {
            const auto &rec = net->tracker().record(id);
            return rec.succeeded || rec.gaveUp;
        },
        /*max_cycles=*/10000);

    const auto &rec = net->tracker().record(id);
    std::printf("\nmessage %llu: %s after %u attempt(s)\n",
                static_cast<unsigned long long>(id),
                done && rec.succeeded ? "delivered" : "FAILED",
                rec.attempts);
    if (!rec.succeeded)
        return 1;

    // 4. The reversal transient carried one STATUS word per router
    //    on the path: connection state plus a checksum of the data
    //    each router forwarded (used to localize corruption).
    std::printf("router STATUS words on the path:\n");
    for (const auto &s : rec.statuses)
        std::printf("  stage %u, router %u: %s, crc 0x%04x\n",
                    s.stage, s.router,
                    s.blocked ? "BLOCKED" : "connected", s.checksum);

    std::printf("\ninjection-to-acknowledgment latency: %llu cycles "
                "(paper Figure 3: 28 unloaded)\n",
                static_cast<unsigned long long>(rec.latency()));
    std::printf("delivered %u/%u payload words intact\n",
                rec.deliveredCount != 0
                    ? static_cast<unsigned>(rec.payload.size())
                    : 0,
                static_cast<unsigned>(rec.payload.size()));
    return 0;
}
