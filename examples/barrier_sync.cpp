/**
 * @file
 * A multiprocessor barrier built on METRO primitives.
 *
 * Low-latency synchronization is exactly the parallelism-limited
 * workload Section 2 argues networks must serve: at a barrier,
 * every processor stalls until the last arrives, so barrier cost
 * is pure cross-network latency. This example implements a
 * flat signal/release barrier over the message API:
 *
 *  - arrival: each node sends its arrival (with its phase) to a
 *    coordinator node;
 *  - release: the coordinator, on collecting all arrivals, sends a
 *    release message to every node.
 *
 * Two algorithms are compared on the Figure 3 machine:
 *
 *  - flat: every node signals one coordinator, which releases
 *    everyone — O(n) serialization at the coordinator;
 *  - binary combining tree: node k signals parent (k-1)/2 once its
 *    subtree arrived; releases fan back down — O(log n) rounds.
 *
 * Both run on the ordinary retry/checksum message protocol (no
 * special hardware support, as the paper intends).
 */

#include <cstdio>

#include "metro/metro.hh"

namespace
{

using namespace metro;

/** Coordinator + participant logic driven from delivery handlers. */
class Barrier
{
  public:
    Barrier(Network *net, unsigned participants)
        : net_(net), n_(participants)
    {
        // Node 0 coordinates; every node participates.
        net_->endpoint(0).setDeliveryHandler(
            [this](const MessageRecord &rec) {
                if (!rec.payload.empty() &&
                    rec.payload[0] == 0xBA) // arrival marker
                    onArrival();
            });
        for (NodeId e = 0; e < n_; ++e) {
            net_->endpoint(e).setDeliveryHandler(
                e == 0 ? net_and_zero_handler()
                       : DeliveryHandlerFor(e));
        }
    }

    NetworkInterface::DeliveryHandler
    net_and_zero_handler()
    {
        return [this](const MessageRecord &rec) {
            if (!rec.payload.empty() && rec.payload[0] == 0xBA)
                onArrival();
            else if (!rec.payload.empty() &&
                     rec.payload[0] == 0xEE)
                releasedAt_[0] = net_->engine().now();
        };
    }

    NetworkInterface::DeliveryHandler
    DeliveryHandlerFor(NodeId e)
    {
        return [this, e](const MessageRecord &rec) {
            if (!rec.payload.empty() && rec.payload[0] == 0xEE)
                releasedAt_[e] = net_->engine().now();
        };
    }

    /** All nodes hit the barrier at `cycle` 0 of the run. */
    void
    arriveAll()
    {
        releasedAt_.assign(n_, 0);
        arrivals_ = 0;
        startCycle_ = net_->engine().now();
        for (NodeId e = 0; e < n_; ++e) {
            if (e == 0)
                onArrival(); // the coordinator arrives locally
            else
                net_->endpoint(e).send(0, {0xBA});
        }
    }

    bool
    done() const
    {
        for (unsigned e = 0; e < n_; ++e) {
            if (releasedAt_[e] == 0)
                return false;
        }
        return true;
    }

    Cycle
    lastRelease() const
    {
        Cycle last = 0;
        for (auto c : releasedAt_)
            last = std::max(last, c);
        return last;
    }

    Cycle
    firstRelease() const
    {
        Cycle first = kNever;
        for (auto c : releasedAt_)
            first = std::min(first, c);
        return first;
    }

    Cycle startCycle() const { return startCycle_; }

  private:
    void
    onArrival()
    {
        if (++arrivals_ == n_) {
            // Release everyone (the coordinator releases itself
            // locally — its "network" is a register write).
            releasedAt_[0] = net_->engine().now();
            for (NodeId e = 1; e < n_; ++e)
                net_->endpoint(0).send(e, {0xEE});
        }
    }

    Network *net_;
    unsigned n_;
    unsigned arrivals_ = 0;
    Cycle startCycle_ = 0;
    std::vector<Cycle> releasedAt_;
};

/** Binary combining-tree barrier over the same message API. */
class TreeBarrier
{
  public:
    TreeBarrier(Network *net, unsigned participants)
        : net_(net), n_(participants)
    {
        arrivals_.assign(n_, 0);
        releasedAt_.assign(n_, 0);
        for (NodeId e = 0; e < n_; ++e) {
            net_->endpoint(e).setDeliveryHandler(
                [this, e](const MessageRecord &rec) {
                    if (rec.payload.empty())
                        return;
                    if (rec.payload[0] == 0xBA)
                        onArrival(e);
                    else if (rec.payload[0] == 0xEE)
                        onRelease(e);
                });
        }
    }

    void
    arriveAll()
    {
        startCycle_ = net_->engine().now();
        arrivals_.assign(n_, 0);
        releasedAt_.assign(n_, 0);
        // Every node "arrives"; leaves start signalling upward.
        for (NodeId e = 0; e < n_; ++e)
            onArrival(e); // local arrival
    }

    bool
    done() const
    {
        for (unsigned e = 0; e < n_; ++e) {
            if (releasedAt_[e] == 0)
                return false;
        }
        return true;
    }

    Cycle
    cost() const
    {
        Cycle last = 0;
        for (auto c : releasedAt_)
            last = std::max(last, c);
        return last - startCycle_;
    }

  private:
    unsigned
    expectedArrivals(NodeId e) const
    {
        // Own arrival plus one per child in the binary tree.
        unsigned expect = 1;
        if (2 * e + 1 < n_)
            ++expect;
        if (2 * e + 2 < n_)
            ++expect;
        return expect;
    }

    void
    onArrival(NodeId e)
    {
        if (++arrivals_[e] < expectedArrivals(e))
            return;
        if (e == 0)
            onRelease(0); // the root releases downward
        else
            net_->endpoint(e).send((e - 1) / 2, {0xBA});
    }

    void
    onRelease(NodeId e)
    {
        releasedAt_[e] = net_->engine().now();
        if (2 * e + 1 < n_)
            net_->endpoint(e).send(2 * e + 1, {0xEE});
        if (2 * e + 2 < n_)
            net_->endpoint(e).send(2 * e + 2, {0xEE});
    }

    Network *net_;
    unsigned n_;
    Cycle startCycle_ = 0;
    std::vector<unsigned> arrivals_;
    std::vector<Cycle> releasedAt_;
};

} // namespace

int
main()
{
    std::printf("barriers over METRO messages (Figure 3 machine)\n\n");
    std::printf("%14s %14s %14s %10s\n", "participants",
                "flat barrier", "tree barrier", "tree skew");

    bool ok = true;
    Cycle flat64 = 0, tree64 = 0;
    for (unsigned n : {4u, 8u, 16u, 32u, 64u}) {
        Cycle flat_cost = 0, tree_cost = 0, tree_skew = 0;
        {
            auto net = buildMultibutterfly(fig3Spec(31));
            Barrier barrier(net.get(), n);
            barrier.arriveAll();
            net->engine().runUntil([&] { return barrier.done(); },
                                   200000);
            if (!barrier.done()) {
                std::printf("flat barrier with %u HUNG\n", n);
                return 1;
            }
            flat_cost = barrier.lastRelease() - barrier.startCycle();
        }
        {
            auto net = buildMultibutterfly(fig3Spec(32));
            TreeBarrier barrier(net.get(), n);
            barrier.arriveAll();
            net->engine().runUntil([&] { return barrier.done(); },
                                   200000);
            if (!barrier.done()) {
                std::printf("tree barrier with %u HUNG\n", n);
                return 1;
            }
            tree_cost = barrier.cost();
            (void)tree_skew;
        }
        std::printf("%14u %11llu cy %11llu cy %10s\n", n,
                    static_cast<unsigned long long>(flat_cost),
                    static_cast<unsigned long long>(tree_cost), "-");
        if (n == 64) {
            flat64 = flat_cost;
            tree64 = tree_cost;
        }
    }

    std::printf("\nthe flat coordinator serializes arrivals, so its "
                "cost grows ~linearly; the\ncombining tree pays "
                "2*log2(n) message latencies: %llu vs %llu cycles "
                "at n = 64.\nBoth run the stock source-responsible "
                "protocol — the paper's point that\nfast primitives "
                "compose into fast synchronization.\n",
                static_cast<unsigned long long>(flat64),
                static_cast<unsigned long long>(tree64));
    ok = tree64 < flat64;
    return ok ? 0 : 1;
}
