/**
 * @file
 * METRO as a routing-hub fabric (the paper's second application
 * domain besides multiprocessors, Section 1).
 *
 * A 16-port hub is built as the paper's Figure 1 network; line
 * cards (the endpoints) forward variable-length frames between
 * external ports. The example runs a skewed frame mix — short
 * control frames and long bulk frames, with a hot egress port —
 * and reports the per-class latency and throughput a hub designer
 * would look at, plus the circuit-switched property that no frame
 * is ever stored inside the fabric (stateless network, Section 2).
 */

#include <cstdio>

#include "metro/metro.hh"

namespace
{

using namespace metro;

struct ClassStats
{
    Histogram latency;
    std::uint64_t frames = 0;
    std::uint64_t words = 0;
};

} // namespace

int
main()
{
    const MultibutterflySpec spec = fig1Spec(/*seed=*/5);
    auto net = buildMultibutterfly(spec);
    Xoshiro256 rng(17);

    std::printf("16-port routing hub on the Figure 1 fabric\n");
    std::printf("frame mix: 70%% control (4 words), 30%% bulk "
                "(64 words); port 9 egress hotspot\n\n");

    // Line cards generate frames; the hub fabric carries each as
    // one circuit-switched connection.
    struct Pending
    {
        std::uint64_t id;
        bool bulk;
    };
    std::vector<Pending> frames;
    const Cycle horizon = 30000;
    Cycle next_gen = 0;

    while (net->engine().now() < horizon) {
        net->engine().step();
        if (net->engine().now() < next_gen)
            continue;
        next_gen = net->engine().now() + 5 + rng.below(20);

        const NodeId in_port =
            static_cast<NodeId>(rng.below(16));
        NodeId out_port =
            rng.chance(0.3) ? 9
                            : static_cast<NodeId>(rng.below(16));
        if (out_port == in_port)
            out_port = (out_port + 1) % 16;
        if (!net->endpoint(in_port).sendIdle())
            continue; // line card busy; frame waits in its queue

        const bool bulk = rng.chance(0.3);
        const unsigned len = bulk ? 64 : 4;
        std::vector<Word> words(len);
        for (auto &w : words)
            w = rng.next() & 0xf; // w = 4-bit fabric
        frames.push_back(
            {net->endpoint(in_port).send(out_port, words), bulk});
    }

    // Drain.
    net->engine().runUntil(
        [&] {
            for (const auto &f : frames) {
                const auto &rec = net->tracker().record(f.id);
                if (!rec.succeeded && !rec.gaveUp)
                    return false;
            }
            return true;
        },
        50000);

    ClassStats control, bulk;
    std::uint64_t lost = 0;
    for (const auto &f : frames) {
        const auto &rec = net->tracker().record(f.id);
        if (!rec.succeeded) {
            ++lost;
            continue;
        }
        auto &cls = f.bulk ? bulk : control;
        cls.latency.sample(rec.latency());
        ++cls.frames;
        cls.words += rec.payload.size() + 1;
    }

    std::printf("%-10s %8s %10s %10s %10s %10s\n", "class",
                "frames", "mean lat", "median", "p95", "words");
    std::printf("%-10s %8llu %10.1f %10llu %10llu %10llu\n",
                "control",
                static_cast<unsigned long long>(control.frames),
                control.latency.mean(),
                static_cast<unsigned long long>(
                    control.latency.median()),
                static_cast<unsigned long long>(
                    control.latency.percentile(95)),
                static_cast<unsigned long long>(control.words));
    std::printf("%-10s %8llu %10.1f %10llu %10llu %10llu\n", "bulk",
                static_cast<unsigned long long>(bulk.frames),
                bulk.latency.mean(),
                static_cast<unsigned long long>(
                    bulk.latency.median()),
                static_cast<unsigned long long>(
                    bulk.latency.percentile(95)),
                static_cast<unsigned long long>(bulk.words));
    std::printf("\nframes lost in the fabric: %llu (stateless "
                "network: a frame exists only at line cards)\n",
                static_cast<unsigned long long>(lost));

    // The stateless-fabric property the paper highlights for
    // gang-scheduled machines: stop the clock at any instant and
    // no frame data lives inside the network.
    net->engine().runUntil(
        [&] { return net->routersQuiescent(); }, 10000);
    std::printf("fabric quiescent after drain: %s\n",
                net->routersQuiescent() ? "yes" : "NO");

    const bool ok = lost == 0 && net->routersQuiescent() &&
                    control.latency.mean() < bulk.latency.mean();
    return ok ? 0 : 1;
}
