/**
 * @file
 * Wire-level trace of one METRO transaction: every symbol of a
 * message's life, on every hop, in time order — the header racing
 * ahead, data streaming behind it, the header word being swallowed
 * as its route bits run out, the TURN, the statuses and the
 * acknowledgment overtaking idles on the way back, and the closing
 * Drop unwinding the circuit.
 *
 * Uses the passive LinkProbe — the traced run is bit-identical to
 * an untraced one.
 */

#include <cstdio>

#include "metro/metro.hh"

int
main()
{
    using namespace metro;

    auto net = buildMultibutterfly(fig1Spec(/*seed=*/7));
    LinkProbe probe;
    for (LinkId l = 0; l < net->numLinks(); ++l)
        probe.watch(&net->link(l));
    net->engine().addComponent(&probe);

    std::printf("one transaction on the Figure 1 network "
                "(16 endpoints, 3 stages of 4-port routers)\n\n");

    const auto id = net->endpoint(6).send(15, {0xa, 0xb, 0xc});
    net->engine().runUntil(
        [&] { return net->tracker().record(id).succeeded; }, 1000);
    net->engine().run(8); // let the tail of the teardown land

    const auto timeline = probe.messageTimeline(id);
    for (const auto &event : timeline)
        std::printf("%s\n",
                    formatTraceEvent(event, &net->link(event.link))
                        .c_str());

    const auto &rec = net->tracker().record(id);
    std::printf("\n%zu wire events; delivered in %llu cycles, "
                "%u attempt(s)\n",
                timeline.size(),
                static_cast<unsigned long long>(rec.latency()),
                rec.attempts);
    return rec.succeeded ? 0 : 1;
}
