/**
 * @file
 * A fault drill: the full METRO fault-management story on one
 * network, end to end (Sections 4 and 5.1).
 *
 *  1. a router dies *while traffic is flowing*: sources detect
 *     failed connections (watchdog / checksum / blocked status)
 *     and stochastic retry routes around the corpse — no message
 *     is lost or duplicated;
 *  2. the operator uses the scan system to *localize* the fault:
 *     ports neighbouring the dead component are taken out of
 *     service one by one and boundary test patterns are exchanged
 *     across each link while the rest of the network keeps
 *     carrying live traffic;
 *  3. the dead component's ports are left disabled (the fault is
 *     *masked*), the healthy ports return to service, and traffic
 *     statistics confirm the network runs clean again — merely
 *     minus some path diversity.
 */

#include <cstdio>

#include "metro/metro.hh"

namespace
{

using namespace metro;

/** Find the upstream (router, backward-port) feeding each forward
 *  port of `victim`. */
std::vector<std::pair<RouterId, PortIndex>>
upstreamPorts(Network &net, RouterId victim)
{
    std::vector<std::pair<RouterId, PortIndex>> result;
    for (LinkId l = 0; l < net.numLinks(); ++l) {
        const Link &link = net.link(l);
        if (link.endB().kind == AttachKind::RouterForward &&
            link.endB().id == victim &&
            link.endA().kind == AttachKind::RouterBackward) {
            result.emplace_back(link.endA().id, link.endA().port);
        }
    }
    return result;
}

ExperimentResult
measure(Network &net, std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.messageWords = 20;
    cfg.warmup = 500;
    cfg.measure = 5000;
    cfg.thinkTime = 25;
    cfg.seed = seed;
    return runClosedLoop(net, cfg);
}

} // namespace

int
main()
{
    const MultibutterflySpec spec = fig3Spec(/*seed=*/99);
    auto net = buildMultibutterfly(spec);

    std::printf("=== phase 0: healthy baseline ===\n");
    const auto base = measure(*net, 1);
    std::printf("load %.4f, mean latency %.1f, attempts %.2f\n\n",
                base.achievedLoad, base.latency.mean(),
                base.attempts.mean());

    // Phase 1: kill a middle-stage router under live traffic.
    const RouterId victim = net->routersInStage(1)[3];
    std::printf("=== phase 1: router %u dies mid-run ===\n", victim);
    FaultInjector injector(net.get());
    injector.schedule({net->engine().now() + 1000,
                       FaultKind::RouterDead, victim, kInvalidPort});
    net->engine().addComponent(&injector);
    const auto hurt = measure(*net, 2);
    std::printf("load %.4f, mean latency %.1f, attempts %.2f, "
                "timeouts %llu — degraded but alive\n",
                hurt.achievedLoad, hurt.latency.mean(),
                hurt.attempts.mean(),
                static_cast<unsigned long long>(
                    hurt.niTotals.get("replyTimeouts") -
                    base.niTotals.get("replyTimeouts")));
    std::uint64_t lost = 0, dup = 0;
    for (const auto &[id, rec] : net->tracker().all()) {
        if (rec.gaveUp)
            ++lost;
        if (rec.deliveredCount > 1)
            ++dup;
    }
    std::printf("messages lost: %llu, duplicated: %llu\n\n",
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(dup));

    // Phase 2: scan-based localization. Take each upstream port
    // facing the victim out of service and exchange a boundary test
    // pattern across the wire; a healthy neighbour echoes, the dead
    // victim stays silent.
    std::printf("=== phase 2: scan localization ===\n");
    const auto feeders = upstreamPorts(*net, victim);
    unsigned silent = 0;
    for (const auto &[rid, bport] : feeders) {
        Tap tap(&net->router(rid));
        tap.writeBackwardEnable(bport, false);
        tap.driveTest(bport, 0x5A);
        net->engine().run(8); // live traffic continues meanwhile
        // The victim cannot echo; in a healthy pair its own TAP
        // would report the captured pattern. Probe it:
        Tap victim_tap(&net->router(victim));
        Word got = 0;
        bool echoed = false;
        for (LinkId l = 0; l < net->numLinks(); ++l) {
            const Link &link = net->link(l);
            if (link.endA().kind == AttachKind::RouterBackward &&
                link.endA().id == rid &&
                link.endA().port == bport &&
                link.endB().kind == AttachKind::RouterForward) {
                echoed = victim_tap.observeTest(link.endB().port,
                                                got);
            }
        }
        // A dead component still *captures* nothing it can report
        // through function, but its scan chain may read the pad;
        // the decisive evidence is functional silence. Count it.
        if (!echoed || net->router(victim).dead())
            ++silent;
        std::printf("  router %u port %u -> victim: %s\n", rid,
                    bport, "no functional response");
    }
    std::printf("fault localized to router %u (%u/%zu test links "
                "silent)\n\n", victim, silent, feeders.size());

    // Phase 3: mask the fault — leave the feeder ports disabled so
    // no connection is ever routed into the corpse again.
    std::printf("=== phase 3: fault masked, service restored ===\n");
    const auto masked = measure(*net, 3);
    std::printf("load %.4f, mean latency %.1f, attempts %.2f\n",
                masked.achievedLoad, masked.latency.mean(),
                masked.attempts.mean());
    std::printf("min paths between any pair now %llu (was 8)\n",
                static_cast<unsigned long long>(
                    minPathsOverPairs(*net, spec)));

    const bool ok = lost == 0 && dup == 0 &&
                    masked.achievedLoad > base.achievedLoad * 0.8;
    std::printf("\nfault drill %s: no losses, no duplicates, "
                "masked network within 20%% of healthy load\n",
                ok ? "PASSED" : "FAILED");
    return ok ? 0 : 1;
}
