/**
 * @file
 * Gang-scheduled time-sharing over a stateless network (paper
 * Section 2, circuit-switching advantage 3):
 *
 *   "No messages ever exist solely in the network. Consequently,
 *    it is possible to stop network operation at any point in time
 *    without losing or duplicating messages. This feature is
 *    useful in gang-scheduled, time-shared multiprocessors,
 *    allowing context switches to occur without incurring overhead
 *    to snapshot network state."
 *
 * Two parallel jobs share the Figure 3 machine in time quanta. At
 * every context switch the outgoing job is *cut off mid-flight* —
 * no draining, no network-state snapshot. Whatever its endpoints
 * had in flight is still owned by those endpoints (the
 * source-responsible protocol), so when the job is rescheduled its
 * messages simply complete or retry. The run verifies that across
 * many abrupt switches neither job loses or duplicates a single
 * message.
 */

#include <cstdio>

#include "metro/metro.hh"

namespace
{

using namespace metro;

/** A closed-loop driver that can be suspended (descheduled). */
class GangDriver : public Component
{
  public:
    GangDriver(NetworkInterface *ni, const DestinationGenerator *dests,
               unsigned words, std::uint64_t seed)
        : Component("gang" + std::to_string(ni->nodeId())), ni_(ni),
          dests_(dests), words_(words), rng_(seed)
    {}

    void setRunning(bool running) { running_ = running; }

    void
    tick(Cycle) override
    {
        if (!running_ || !ni_->sendIdle())
            return;
        std::vector<Word> payload(words_ - 1);
        for (auto &w : payload)
            w = rng_.next() & 0xff;
        ids_.push_back(
            ni_->send(dests_->pick(ni_->nodeId(), rng_), payload));
    }

    const std::vector<std::uint64_t> &ids() const { return ids_; }

  private:
    NetworkInterface *ni_;
    const DestinationGenerator *dests_;
    unsigned words_;
    Xoshiro256 rng_;
    bool running_ = false;
    std::vector<std::uint64_t> ids_;
};

} // namespace

int
main()
{
    const auto spec = fig3Spec(/*seed=*/404);
    auto net = buildMultibutterfly(spec);
    DestinationGenerator dests(TrafficPattern::UniformRandom, 64, 9);

    // Job A owns endpoints 0..31, job B owns 32..63 (gangs).
    std::vector<std::unique_ptr<GangDriver>> job_a, job_b;
    for (NodeId e = 0; e < 64; ++e) {
        auto driver = std::make_unique<GangDriver>(
            &net->endpoint(e), &dests, 20, 1000 + e);
        net->engine().addComponent(driver.get());
        (e < 32 ? job_a : job_b).push_back(std::move(driver));
    }

    auto set_running = [](auto &job, bool on) {
        for (auto &d : job)
            d->setRunning(on);
    };

    std::printf("gang-scheduled time sharing on the Figure 3 "
                "machine: 2 jobs x 32 processors,\n137-cycle quanta, "
                "abrupt switches (no drain, no network snapshot)\n\n");

    // Alternate quanta; switches land mid-message on purpose
    // (prime quantum vs. ~28-cycle messages).
    const Cycle quantum = 137;
    bool a_turn = true;
    unsigned switches = 0;
    for (Cycle t = 0; t < 40 * quantum; t += quantum) {
        set_running(job_a, a_turn);
        set_running(job_b, !a_turn);
        net->engine().run(quantum);
        a_turn = !a_turn;
        ++switches;

        // The stateless property, checked at the switch instant:
        // every message is either finished or still owned by its
        // source endpoint — none exists only inside the fabric.
        for (const auto &[id, rec] : net->tracker().all()) {
            const bool finished = rec.succeeded || rec.gaveUp;
            const bool source_owned =
                !net->endpoint(rec.src).sendIdle() || finished;
            if (!finished && !source_owned) {
                std::printf("message %llu lost in the fabric!\n",
                            static_cast<unsigned long long>(id));
                return 1;
            }
        }
    }

    // Let both jobs run out, then audit the ledger.
    set_running(job_a, false);
    set_running(job_b, false);
    net->engine().runUntil(
        [&] {
            for (const auto &[id, rec] : net->tracker().all()) {
                if (!rec.succeeded && !rec.gaveUp)
                    return false;
            }
            return true;
        },
        50000);

    std::uint64_t a_msgs = 0, b_msgs = 0, lost = 0, dup = 0;
    for (const auto &[id, rec] : net->tracker().all()) {
        (rec.src < 32 ? a_msgs : b_msgs) += 1;
        if (!rec.succeeded)
            ++lost;
        if (rec.deliveredCount > 1)
            ++dup;
    }

    std::printf("%u abrupt context switches\n", switches);
    std::printf("job A messages: %llu, job B messages: %llu\n",
                static_cast<unsigned long long>(a_msgs),
                static_cast<unsigned long long>(b_msgs));
    std::printf("lost: %llu, duplicated: %llu (claim: 0 and 0)\n",
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(dup));
    std::printf("fabric quiescent at the end: %s\n",
                net->routersQuiescent() ? "yes" : "no");

    const bool ok = lost == 0 && dup == 0 && a_msgs > 100 &&
                    b_msgs > 100;
    std::printf("\nstateless-network gang scheduling %s\n",
                ok ? "DEMONSTRATED" : "FAILED");
    return ok ? 0 : 1;
}
