/**
 * @file
 * libFuzzer entry point for the sweep-file parser.
 *
 * Arbitrary bytes must either parse into a bounded sweep (the
 * parser caps total point count) or be rejected with an error —
 * never crash or exhaust memory materializing points.
 *
 * Seed corpus: tests/corpus/sweepfile/ (replayed as plain ctest
 * cases by tests/test_parser_fuzz.cc on non-clang toolchains).
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "app/sweepfile.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string text(reinterpret_cast<const char *>(data),
                           size);
    std::string error;
    const auto sweep = metro::parseSweepText(text, error);
    if (!sweep.has_value() && error.empty())
        __builtin_trap(); // rejection must carry a message
    return 0;
}
