/**
 * @file
 * libFuzzer entry point for the checkpoint deserializer.
 *
 * A checkpoint restores into a *live* simulation instance, so a
 * hostile or corrupted file is the highest-risk input the serve
 * path takes: every count is attacker-controlled and most fields
 * index into engine structures. restoreCheckpointBytes must reject
 * arbitrary bytes with an error — never crash, assert, index out
 * of range, or allocate unbounded memory.
 *
 * The target instance is built once and reused: a failed restore
 * may leave it partially overwritten, which is exactly the state a
 * real process would be in, and later iterations must still be
 * safe against it. The digest is read back out of the input's own
 * header so fuzzing reaches past the header check into the tagged
 * sections.
 *
 * Each input restores twice: once verbatim (exercising the
 * integrity-footer gate, which rejects almost every mutation), and
 * once with a freshly computed valid footer appended (so mutations
 * keep reaching the header check and section decoders behind the
 * gate).
 *
 * Seed corpus: tests/corpus/checkpoint/ (replayed as plain ctest
 * cases by tests/test_checkpoint_fuzz.cc on non-clang toolchains).
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "network/multibutterfly.hh"
#include "network/presets.hh"
#include "serve/checkpoint.hh"
#include "traffic/drivers.hh"
#include "traffic/patterns.hh"

namespace
{

struct Target
{
    std::unique_ptr<metro::Network> net;
    std::unique_ptr<metro::DestinationGenerator> dests;
    std::vector<std::unique_ptr<metro::ClosedLoopDriver>> drivers;
    metro::CheckpointParticipants parts;

    Target()
    {
        net = metro::buildMultibutterfly(metro::fig1Spec(1));
        const auto n =
            static_cast<unsigned>(net->numEndpoints());
        dests = std::make_unique<metro::DestinationGenerator>(
            metro::TrafficPattern::UniformRandom, n, 0x77, 0,
            0.25);
        metro::DriverConfig dcfg;
        dcfg.messageWords = 8;
        for (unsigned e = 0; e < n; ++e) {
            drivers.push_back(
                std::make_unique<metro::ClosedLoopDriver>(
                    &net->endpoint(e), dests.get(), dcfg, 150,
                    0x5151ULL * (e + 1)));
            net->engine().addComponent(drivers.back().get());
        }
        parts.net = net.get();
        for (auto &d : drivers)
            parts.closedDrivers.push_back(d.get());
    }
};

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    static Target target;
    // Mirror the digest the input claims (header offset 8) so the
    // compatibility gate passes and the section decoders fuzz.
    std::uint64_t digest = 0;
    if (size >= 16)
        for (int b = 0; b < 8; ++b)
            digest |= static_cast<std::uint64_t>(data[8 + b])
                      << (8 * b);
    std::vector<std::uint8_t> blob;
    metro::restoreCheckpointBytes(data, size, digest, target.parts,
                                  &blob);

    // Pass 2: same bytes blessed with a valid footer, so the
    // mutation lands on the section decoders instead of dying at
    // the checksum.
    std::vector<std::uint8_t> blessed(data, data + size);
    metro::appendCheckpointFooter(blessed);
    blob.clear();
    metro::restoreCheckpointBytes(blessed.data(), blessed.size(),
                                  digest, target.parts, &blob);
    return 0;
}
