/**
 * @file
 * libFuzzer entry point for the multibutterfly spec-file parser.
 *
 * The parser must reject arbitrary bytes with an error message —
 * never crash, hang, or trip UBSan/ASan. Validation (spec.validate())
 * is deliberately not called here: it fatal()s by contract on
 * semantically impossible specs, which is not a parser bug.
 *
 * Seed corpus: tests/corpus/specfile/ (replayed as plain ctest
 * cases by tests/test_parser_fuzz.cc on non-clang toolchains).
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "app/specfile.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string text(reinterpret_cast<const char *>(data),
                           size);
    std::string error;
    const auto spec = metro::parseSpecText(text, error);
    if (spec.has_value()) {
        // Accepted input must round-trip through the serializer and
        // parse again (the specToText contract).
        std::string error2;
        const auto again =
            metro::parseSpecText(metro::specToText(*spec), error2);
        if (!again.has_value())
            __builtin_trap();
    }
    return 0;
}
