/**
 * @file
 * libFuzzer entry point for the fault-file parser.
 *
 * Arbitrary bytes must either parse into a bounded fault schedule
 * (the parser caps event count) or be rejected with an error —
 * never crash or exhaust memory materializing events.
 *
 * Seed corpus: tests/corpus/faultfile/ (replayed as plain ctest
 * cases by tests/test_parser_fuzz.cc on non-clang toolchains).
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "app/faultfile.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string text(reinterpret_cast<const char *>(data),
                           size);
    std::string error;
    const auto faults = metro::parseFaultText(text, error);
    if (!faults.has_value() && error.empty())
        __builtin_trap(); // rejection must carry a message
    return 0;
}
